"""Shared-resource primitives built on the event kernel.

Two families cover everything the grid model needs:

* :class:`Resource` — a counted semaphore with a FIFO wait queue; models
  exclusive servers (a data server's single request-processing loop, a
  worker's CPU).
* :class:`Store` — an unbounded (or capacity-bounded) FIFO of items with
  blocking ``get``; models mailboxes and request queues between
  processes.  :class:`PriorityStore` retrieves the smallest item first.

All wait queues are FIFO with deterministic ordering, in keeping with the
kernel's reproducibility guarantee.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Generic, List, Optional, Tuple, TypeVar

from .engine import Environment
from .events import Event

T = TypeVar("T")


class Request(Event):
    """Event granted when a :class:`Resource` slot becomes available."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """A counted, FIFO-fair resource with ``capacity`` concurrent users.

    Usage::

        req = resource.request()
        yield req
        try:
            ... exclusive work ...
        finally:
            resource.release()
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Request:
        """Ask for a slot; the returned event succeeds once granted."""
        req = Request(self)
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed()
        else:
            self._waiters.append(req)
        return req

    def release(self) -> None:
        """Return a slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        if self._waiters:
            # Hand the slot directly to the next waiter; _in_use is
            # unchanged because ownership transfers.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def cancel(self, req: Request) -> bool:
        """Withdraw a still-queued request.  Returns True if removed."""
        try:
            self._waiters.remove(req)
            return True
        except ValueError:
            return False


class StoreGet(Event):
    """Event carrying the retrieved item once a ``get`` is satisfied."""

    __slots__ = ()


class StorePut(Event):
    """Event that succeeds once a ``put`` is accepted (capacity stores)."""

    __slots__ = ()


class Store(Generic[T]):
    """FIFO item store with blocking ``get`` and optional capacity.

    ``put`` on an unbounded store succeeds immediately; on a bounded
    store it waits until space frees up.  Items are matched to getters
    in strict arrival order.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self._getters: Deque[StoreGet] = deque()
        self._putters: Deque[Tuple[StorePut, T]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> Tuple[T, ...]:
        """Snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: T) -> StorePut:
        """Insert ``item``; returns an event that succeeds on acceptance."""
        ev = StorePut(self.env)
        if self._getters:
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> StoreGet:
        """Remove the oldest item; the event's value is the item."""
        ev = StoreGet(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
            if self._putters:
                put_ev, item = self._putters.popleft()
                self._items.append(item)
                put_ev.succeed()
        else:
            self._getters.append(ev)
        return ev


class PriorityStore(Store[T]):
    """A store whose ``get`` returns the smallest item first.

    Items must be mutually comparable; ties are broken by insertion
    order via an internal sequence number, keeping retrieval
    deterministic.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        super().__init__(env, capacity)
        self._heap: List[Tuple[Any, int, T]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> Tuple[T, ...]:
        return tuple(item for _k, _s, item in sorted(self._heap))

    def put(self, item: T) -> StorePut:
        ev = StorePut(self.env)
        if self._getters:
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif self.capacity is None or len(self._heap) < self.capacity:
            self._push(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> StoreGet:
        ev = StoreGet(self.env)
        if self._heap:
            ev.succeed(heapq.heappop(self._heap)[2])
            if self._putters:
                put_ev, item = self._putters.popleft()
                self._push(item)
                put_ev.succeed()
        else:
            self._getters.append(ev)
        return ev

    def _push(self, item: T) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (item, self._seq, item))
