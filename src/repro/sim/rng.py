"""Deterministic random-number streams.

Simulations need independent randomness per concern (topology generation,
worker speeds, scheduler tie-breaking, ...) that stays stable when other
concerns consume more or fewer draws.  :class:`RngRegistry` derives one
:class:`random.Random` stream per *name* from a master seed, so adding a
new consumer never perturbs existing streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for ``name`` from ``master_seed``.

    Uses SHA-256 rather than Python's salted ``hash`` so the derivation
    is identical across interpreter runs and platforms.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A family of named, independent random streams.

    >>> rngs = RngRegistry(42)
    >>> rngs.stream("topology").random() == RngRegistry(42).stream("topology").random()
    True
    """

    def __init__(self, master_seed: int):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose master seed is derived from ``name``.

        Used to give each of several repeated experiment runs its own
        namespace of streams.
        """
        return RngRegistry(derive_seed(self.master_seed, name))
