"""Workloads: synthetic Coadd, generic BoT generators, speeds, traces.

* :mod:`repro.workload.coadd` — the paper's workload, calibrated against
  Table 2 and Figure 3.
* :mod:`repro.workload.synthetic` — uniform / Zipf / sliding-window
  generators for tests and sensitivity studies.
* :mod:`repro.workload.top500` — Top500-style worker speed sampling.
* :mod:`repro.workload.stats` — Table 2 / Figure 1/3 characterization.
* :mod:`repro.workload.traces` — JSON (de)serialization of jobs.
"""

from .campaign import Campaign, CampaignJob, coadd_campaign, concat_jobs
from .coadd import COADD_6000, COADD_FULL, CoaddParams
from .coadd import generate as generate_coadd
from .coadd import generate_with_keys
from .ordering import reorder_job
from .stats import WorkloadStats, characterize, reference_cdf_series
from .synthetic import sliding_window, uniform_random, zipf_popularity
from .top500 import sample_speed, sample_speeds
from .traces import job_from_dict, job_to_dict, load_job, save_job

__all__ = [
    "COADD_6000",
    "Campaign",
    "CampaignJob",
    "coadd_campaign",
    "concat_jobs",
    "generate_with_keys",
    "reorder_job",
    "COADD_FULL",
    "CoaddParams",
    "WorkloadStats",
    "characterize",
    "generate_coadd",
    "job_from_dict",
    "job_to_dict",
    "load_job",
    "reference_cdf_series",
    "sample_speed",
    "sample_speeds",
    "save_job",
    "sliding_window",
    "uniform_random",
    "zipf_popularity",
]
