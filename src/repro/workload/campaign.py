"""Multi-job campaigns over a shared file universe.

The storage-affinity paper evaluates *sequences* of jobs whose input
sets overlap — data left at a site by one job accelerates the next.
This module builds such campaigns for the synthetic Coadd:

* :func:`coadd_campaign` — ``num_jobs`` passes over the same stripe
  with jittered windows and re-calibration (different auxiliary files
  per job), so consecutive jobs share most field files but not all;
* :func:`concat_jobs` — fuses per-job task lists into one
  :class:`~repro.grid.job.Job` with contiguous task ids, remembering
  which span belongs to which job (for per-job metrics and sequential
  release).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..grid.files import FileCatalog
from ..grid.job import Job, Task
from .coadd import CoaddParams, generate_with_keys


@dataclass(frozen=True)
class CampaignJob:
    """One job's task-id span within a fused campaign job."""

    name: str
    first_task_id: int
    num_tasks: int

    @property
    def task_ids(self) -> range:
        return range(self.first_task_id,
                     self.first_task_id + self.num_tasks)


@dataclass(frozen=True)
class Campaign:
    """A fused multi-job workload."""

    job: Job
    members: Tuple[CampaignJob, ...]

    def member_tasks(self, index: int) -> List[Task]:
        member = self.members[index]
        return [self.job[tid] for tid in member.task_ids]


def concat_jobs(jobs: Sequence[Job], names: Sequence[str] = ()) -> Campaign:
    """Fuse jobs sharing one catalog into a single campaign job.

    All jobs must reference the same :class:`FileCatalog` object (the
    generators below guarantee it); task ids are renumbered to be
    contiguous in campaign order.
    """
    if not jobs:
        raise ValueError("need at least one job")
    catalog = jobs[0].catalog
    for job in jobs[1:]:
        if job.catalog is not catalog:
            raise ValueError("campaign jobs must share one catalog")
    tasks: List[Task] = []
    members: List[CampaignJob] = []
    for index, job in enumerate(jobs):
        name = names[index] if index < len(names) else f"job{index}"
        members.append(CampaignJob(name=name,
                                   first_task_id=len(tasks),
                                   num_tasks=len(job)))
        for task in job:
            tasks.append(Task(task_id=len(tasks), files=task.files,
                              flops=task.flops))
    fused = Job(tasks, catalog, name="campaign")
    return Campaign(job=fused, members=tuple(members))


def coadd_campaign(params: CoaddParams, num_jobs: int, seed: int = 0,
                   shuffle: bool = True) -> Campaign:
    """``num_jobs`` coaddition passes over one stripe.

    Every pass re-generates task windows with a different seed over the
    *same* run geometry, so passes share the field-file universe (the
    reuse across jobs) while differing in exact input sets; auxiliary
    files are per-pass (never shared across jobs).  With ``shuffle``
    each pass's tasks are internally permuted (see
    :mod:`repro.workload.ordering` for why).
    """
    if num_jobs < 1:
        raise ValueError("num_jobs must be >= 1")
    # Generate each pass over the same run geometry (same `seed`; only
    # the per-task jitter differs), then merge their file spaces by the
    # generators' stable identity keys: field files unify across
    # passes, auxiliary files stay per-pass.
    passes = [
        generate_with_keys(params, seed=seed,
                           jitter_seed=None if index == 0
                           else seed * 1000003 + index)
        for index in range(num_jobs)
    ]
    campaign_fid: Dict[Tuple, int] = {}
    remapped: List[List[Task]] = []
    for index, (job_pass, keys) in enumerate(passes):
        local_to_campaign: Dict[int, int] = {}
        for local_fid, key in enumerate(keys):
            if key[0] == "aux":
                key = ("aux", index, key[1])
            local_to_campaign[local_fid] = campaign_fid.setdefault(
                key, len(campaign_fid))
        tasks = [
            Task(task_id=task.task_id,
                 files=frozenset(local_to_campaign[fid]
                                 for fid in task.files),
                 flops=task.flops)
            for task in job_pass
        ]
        remapped.append(tasks)

    catalog = FileCatalog(len(campaign_fid),
                          default_size=passes[0][0].catalog.default_size)
    order = random.Random(seed + 99)
    jobs: List[Job] = []
    for index, tasks in enumerate(remapped):
        if shuffle:
            order.shuffle(tasks)
            tasks = [Task(task_id=i, files=t.files, flops=t.flops)
                     for i, t in enumerate(tasks)]
        jobs.append(Job(tasks, catalog, name=f"pass{index}"))
    return concat_jobs(jobs, names=[f"pass{i}" for i in range(num_jobs)])
