"""Synthetic Coadd: the paper's workload, rebuilt from its statistics.

Coadd (SDSS southern-hemisphere coaddition) is a spatial processing
application: the southern stripe is divided into output tiles (one task
per tile), and each task coadds every survey *field* (file) that
overlaps its sky window, across the many imaging runs that swept the
stripe.  Consecutive tiles therefore share most of their inputs — the
data-sharing structure all the paper's scheduling metrics exploit.

The real trace is not distributable, so this module generates a
calibrated synthetic equivalent:

* the stripe is a 1-D axis; task ``i`` is centred at ``i * stride``;
* each of ``num_runs`` imaging runs tiles the whole stripe with fields
  of a per-run length and phase;
* a task needs every field (of every run) overlapping its window, whose
  width is drawn per task from a triangular distribution;
* windows are clipped at the stripe ends, giving the small-input tail
  the real trace shows;
* a population of *auxiliary* files (masks, astrometric calibrations)
  is each shared by only a short span of consecutive tasks — they
  produce the low-reference tail of the Figure 1/3 CDF (the ~15% of
  files referenced fewer than 6 times).

The :data:`COADD_6000` preset is calibrated against Table 2 of the
paper (6,000 tasks, 53,390 files, 36/101/78.4 min/max/mean files per
task) and the Figure 3 reference CDF (~85% of files referenced >= 6
times).  :data:`COADD_FULL` approximates the full 44,000-task campaign
(588,900 files, mean 124 files/task, max 181).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..grid.files import FileCatalog, MB
from ..grid.job import Job, Task


@dataclass(frozen=True)
class CoaddParams:
    """Shape parameters of the synthetic Coadd generator.

    Attributes
    ----------
    num_tasks:
        Number of output tiles (= tasks).
    num_runs:
        Imaging runs layered over the stripe; every task needs at least
        one field from each run covering its window.
    field_lengths:
        Candidate per-run field lengths, in stripe units.
    stride:
        Distance between consecutive task centres, in stripe units.
        Larger stride => fewer shared files between neighbours.
    width_lo / width_mode / width_hi:
        Triangular distribution of task window widths (stripe units).
    aux_files_per_task:
        Auxiliary (short-span) files generated per task on average.
    aux_span_lo / aux_span_hi:
        Each auxiliary file is needed by a uniform random run of this
        many consecutive tasks.
    file_size:
        Bytes per field file (the paper's default is 5 MB; experiments
        sweep 5/25/50 MB).
    flops_per_file:
        Compute cost accrued per input file of a task.
    """

    num_tasks: int = 6000
    num_runs: int = 24
    field_lengths: Tuple[float, ...] = (3.0, 4.0, 5.0)
    stride: float = 1.21
    width_lo: float = 1.9
    width_mode: float = 11.0
    width_hi: float = 11.0
    aux_files_per_task: float = 1.33
    aux_span_lo: int = 1
    aux_span_hi: int = 5
    file_size: float = 5 * MB
    flops_per_file: float = 6.0e9

    def __post_init__(self):
        if self.num_tasks < 1:
            raise ValueError("num_tasks must be >= 1")
        if self.num_runs < 1:
            raise ValueError("num_runs must be >= 1")
        if self.stride <= 0:
            raise ValueError("stride must be positive")
        if not (0 < self.width_lo <= self.width_mode <= self.width_hi):
            raise ValueError("need 0 < width_lo <= width_mode <= width_hi")
        if any(length <= 0 for length in self.field_lengths):
            raise ValueError("field lengths must be positive")
        if self.aux_files_per_task < 0:
            raise ValueError("aux_files_per_task must be >= 0")
        if not 1 <= self.aux_span_lo <= self.aux_span_hi:
            raise ValueError("need 1 <= aux_span_lo <= aux_span_hi")


#: Calibrated to Table 2 / Figure 3 (first 6,000 Coadd tasks).
COADD_6000 = CoaddParams()

#: Approximates the full 44,000-task campaign of Section 2.1 (588,900
#: files; 36..181 files/task, mean ~124).
COADD_FULL = CoaddParams(
    num_tasks=44000,
    num_runs=36,
    stride=1.21,
    width_lo=1.2,
    width_mode=12.2,
    width_hi=13.2,
    aux_files_per_task=2.0,
)


def generate(params: CoaddParams = COADD_6000, seed: int = 0,
             file_size: Optional[float] = None,
             jitter_seed: Optional[int] = None) -> Job:
    """Generate a synthetic Coadd job.

    Deterministic for a given (params, seed).  ``file_size`` overrides
    ``params.file_size`` (used by the Figure 8 sweep).

    ``jitter_seed`` re-rolls the per-task randomness (window widths,
    auxiliary files) while keeping the run geometry — and therefore the
    *field-file id space* — identical to the plain ``seed`` job.  Used
    by multi-job campaigns, where passes over the same stripe share
    field files but not exact input sets.
    """
    job, _keys = _build(params, seed, file_size, jitter_seed)
    return job


def generate_with_keys(params: CoaddParams = COADD_6000, seed: int = 0,
                       file_size: Optional[float] = None,
                       jitter_seed: Optional[int] = None):
    """:func:`generate`, also returning each file's stable identity key.

    Returns ``(job, keys)`` where ``keys[fid]`` is ``("field", run, k)``
    for survey fields (stable across jitter re-rolls of the same seed)
    or ``("aux", index)`` for per-job auxiliary files.  Campaign
    builders merge multiple passes' file spaces by these keys.
    """
    return _build(params, seed, file_size, jitter_seed)


def _build(params: CoaddParams, seed: int, file_size: Optional[float],
           jitter_seed: Optional[int]):
    """Shared generator body; returns (job, per-file identity keys)."""
    rng = random.Random(seed)
    # Per-run geometry: lengths cycle round-robin through the candidate
    # set (keeping aggregate statistics stable across seeds); phases are
    # random per run.
    runs: List[Tuple[float, float]] = []
    for run_index in range(params.num_runs):
        length = params.field_lengths[run_index % len(params.field_lengths)]
        phase = rng.uniform(0.0, length)
        runs.append((length, phase))
    if jitter_seed is not None:
        # Keep the geometry draws above, replace everything after.
        rng = random.Random(jitter_seed)

    # Auxiliary short-span files: each is needed by a random run of
    # consecutive tasks, producing files with few references.
    num_aux = round(params.aux_files_per_task * params.num_tasks)
    aux_by_task: Dict[int, List[int]] = {}
    for aux_index in range(num_aux):
        start = rng.randrange(params.num_tasks)
        span = rng.randint(params.aux_span_lo, params.aux_span_hi)
        for task_index in range(start, min(start + span, params.num_tasks)):
            aux_by_task.setdefault(task_index, []).append(aux_index)

    stripe_end = (params.num_tasks - 1) * params.stride
    file_ids: Dict[Tuple[int, int], int] = {}
    task_file_sets: List[set] = []
    for i in range(params.num_tasks):
        centre = i * params.stride
        width = rng.triangular(params.width_lo, params.width_hi,
                               params.width_mode)
        lo = max(0.0, centre - width / 2.0)
        hi = min(stripe_end, centre + width / 2.0)
        files = set()
        for run_index, (length, phase) in enumerate(runs):
            k_lo = math.floor((lo - phase) / length)
            k_hi = math.floor((hi - phase) / length)
            for k in range(k_lo, k_hi + 1):
                key = (run_index, k)
                fid = file_ids.get(key)
                if fid is None:
                    fid = len(file_ids)
                    file_ids[key] = fid
                files.add(fid)
        task_file_sets.append(files)

    # Auxiliary file ids follow the field files in the dense id space.
    num_field_files = len(file_ids)
    tasks: List[Task] = []
    for i, files in enumerate(task_file_sets):
        for aux_index in aux_by_task.get(i, ()):
            files.add(num_field_files + aux_index)
        tasks.append(Task(task_id=i, files=frozenset(files),
                          flops=params.flops_per_file * len(files)))

    # Some auxiliary ids may be unused (span fell entirely off the end);
    # the catalog still carries them, which is harmless.
    catalog = FileCatalog(num_field_files + num_aux,
                          default_size=file_size or params.file_size)
    job = Job(tasks, catalog, name=f"coadd-{params.num_tasks}")

    keys: List[Tuple] = [None] * (num_field_files + num_aux)
    for (run_index, k), fid in file_ids.items():
        keys[fid] = ("field", run_index, k)
    for aux_index in range(num_aux):
        keys[num_field_files + aux_index] = ("aux", aux_index)
    return job, keys
