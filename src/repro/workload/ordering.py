"""Task presentation order.

The scheduler's FIFO fallbacks (cold-start ties, workqueue) follow the
order tasks appear in the job.  That order matters a great deal for
spatial workloads: if tasks arrive sorted by sky position, every site's
first request lands at the same stripe end and all sites then sweep the
frontier in lockstep, refetching each other's files.  The real Coadd
task list is not position-sorted (tasks are enumerated per imaging
run/workflow batch), so the default experiment pipeline presents tasks
in a seeded random permutation.

Task ids are *renumbered* to match presentation order (id = queue
position), keeping the "lowest task id" tie-breaking rules aligned with
FIFO semantics; input file sets are untouched.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..grid.job import Job, Task

#: Recognized presentation orders.
ORDERS = ("natural", "shuffled", "striped")


def reorder_job(job: Job, order: str, seed: int = 0,
                stripes: int = 16) -> Job:
    """Return ``job`` with tasks presented in the given ``order``.

    * ``natural`` — unchanged.
    * ``shuffled`` — seeded uniform permutation (the default pipeline
      order; see module docstring).
    * ``striped`` — round-robin over ``stripes`` contiguous blocks,
      a deterministic scatter used by ordering-sensitivity tests.
    """
    if order == "natural":
        return job
    tasks = list(job.tasks)
    if order == "shuffled":
        random.Random(seed).shuffle(tasks)
    elif order == "striped":
        tasks = _stripe(tasks, stripes)
    else:
        raise ValueError(f"unknown order {order!r}; choose from {ORDERS}")
    renumbered = [
        Task(task_id=position, files=task.files, flops=task.flops)
        for position, task in enumerate(tasks)
    ]
    return Job(renumbered, job.catalog, name=f"{job.name}-{order}")


def _stripe(tasks: Sequence[Task], stripes: int) -> List[Task]:
    if stripes < 1:
        raise ValueError("stripes must be >= 1")
    block = max(1, -(-len(tasks) // stripes))
    blocks = [list(tasks[i:i + block]) for i in range(0, len(tasks), block)]
    out: List[Task] = []
    while any(blocks):
        for chunk in blocks:
            if chunk:
                out.append(chunk.pop(0))
    return out
