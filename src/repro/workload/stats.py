"""Workload characterization: Table 2 numbers and the Figure 1/3 CDF.

The paper characterizes Coadd with (a) aggregate counts — total files,
min/max/average files per task — and (b) a cumulative distribution of
file reference counts plotted against a *decreasing* x-axis: the point
at x = k is the fraction of files referenced by **at least** k tasks.
:class:`WorkloadStats` computes both from any :class:`~repro.grid.job.Job`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..grid.job import Job


@dataclass(frozen=True)
class WorkloadStats:
    """Summary statistics of a Bag-of-Tasks workload."""

    num_tasks: int
    total_files: int
    min_files_per_task: int
    max_files_per_task: int
    avg_files_per_task: float
    #: reference_cdf[k] = fraction of files referenced by >= k tasks.
    reference_cdf: Tuple[Tuple[int, float], ...]

    def fraction_referenced_at_least(self, k: int) -> float:
        """Fraction of files referenced by at least ``k`` tasks."""
        for refs, fraction in self.reference_cdf:
            if refs == k:
                return fraction
        if k <= 0:
            return 1.0
        max_refs = self.reference_cdf[-1][0] if self.reference_cdf else 0
        return 0.0 if k > max_refs else 1.0

    def as_table(self) -> str:
        """Render the Table 2 block as aligned ASCII."""
        rows = [
            ("Total number of files", f"{self.total_files}"),
            ("Max number of files needed by a task",
             f"{self.max_files_per_task}"),
            ("Min number of files needed by a task",
             f"{self.min_files_per_task}"),
            ("Average number of files needed by a task",
             f"{self.avg_files_per_task:.4f}"),
        ]
        width = max(len(label) for label, _ in rows)
        return "\n".join(f"{label:<{width}}  {value}"
                         for label, value in rows)


def characterize(job: Job) -> WorkloadStats:
    """Compute :class:`WorkloadStats` for ``job``."""
    sizes = [task.num_files for task in job]
    counts = job.reference_counts()
    total_files = len(counts)
    max_refs = max(counts.values(), default=0)
    cdf: List[Tuple[int, float]] = []
    if total_files:
        # fraction of files with refs >= k, for k = 1 .. max_refs.
        histogram: Dict[int, int] = {}
        for refs in counts.values():
            histogram[refs] = histogram.get(refs, 0) + 1
        at_least = 0
        tail: Dict[int, int] = {}
        for k in range(max_refs, 0, -1):
            at_least += histogram.get(k, 0)
            tail[k] = at_least
        cdf = [(k, tail[k] / total_files) for k in range(1, max_refs + 1)]
    return WorkloadStats(
        num_tasks=len(job),
        total_files=total_files,
        min_files_per_task=min(sizes) if sizes else 0,
        max_files_per_task=max(sizes) if sizes else 0,
        avg_files_per_task=sum(sizes) / len(sizes) if sizes else 0.0,
        reference_cdf=tuple(cdf),
    )


def reference_cdf_series(stats: WorkloadStats,
                         points: Sequence[int] = tuple(range(1, 13)),
                         ) -> List[Tuple[int, float]]:
    """The Figure 1/3 series: (k, % of files referenced >= k times)."""
    return [(k, 100.0 * stats.fraction_referenced_at_least(k))
            for k in points]
