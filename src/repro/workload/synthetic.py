"""Generic Bag-of-Tasks workload generators.

Beyond Coadd, the library ships three simple generators used by tests,
examples, and sensitivity studies:

* :func:`uniform_random` — each task draws its inputs uniformly from the
  file population (no exploitable locality; a worst case for
  data-aware scheduling).
* :func:`zipf_popularity` — inputs drawn from a Zipf distribution over
  files, mimicking the skewed data-set popularity Ranganathan & Foster
  assume for their replication results.
* :func:`sliding_window` — a bare-bones spatial workload: task ``i``
  needs files ``[i*step, i*step + span)``; maximal, regular locality.
"""

from __future__ import annotations

import random
from typing import List

from ..grid.files import FileCatalog, MB
from ..grid.job import Job, Task


def uniform_random(num_tasks: int, num_files: int, files_per_task: int,
                   seed: int = 0, file_size: float = 5 * MB,
                   flops_per_file: float = 6.0e9) -> Job:
    """Tasks with uniformly random input sets (no locality structure)."""
    if files_per_task > num_files:
        raise ValueError("files_per_task cannot exceed num_files")
    rng = random.Random(seed)
    population = range(num_files)
    tasks = [
        Task(task_id=i,
             files=frozenset(rng.sample(population, files_per_task)),
             flops=flops_per_file * files_per_task)
        for i in range(num_tasks)
    ]
    return Job(tasks, FileCatalog(num_files, default_size=file_size),
               name="uniform")


def zipf_popularity(num_tasks: int, num_files: int, files_per_task: int,
                    alpha: float = 1.1, seed: int = 0,
                    file_size: float = 5 * MB,
                    flops_per_file: float = 6.0e9) -> Job:
    """Tasks whose inputs follow a Zipf(alpha) popularity distribution.

    Popular files appear in many tasks, creating both the sharing that
    data-aware scheduling exploits and the hot-spot imbalance the paper
    blames on task-centric assignment.
    """
    if files_per_task > num_files:
        raise ValueError("files_per_task cannot exceed num_files")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = random.Random(seed)
    # Inverse-CDF sampling over ranks 1..num_files.
    weights = [1.0 / (rank ** alpha) for rank in range(1, num_files + 1)]
    total = sum(weights)
    cumulative: List[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight
        cumulative.append(acc / total)

    def draw() -> int:
        u = rng.random()
        lo, hi = 0, num_files - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    tasks = []
    for i in range(num_tasks):
        files = set()
        while len(files) < files_per_task:
            files.add(draw())
        tasks.append(Task(task_id=i, files=frozenset(files),
                          flops=flops_per_file * files_per_task))
    return Job(tasks, FileCatalog(num_files, default_size=file_size),
               name="zipf")


def sliding_window(num_tasks: int, span: int, step: int = 1, seed: int = 0,
                   file_size: float = 5 * MB,
                   flops_per_file: float = 6.0e9) -> Job:
    """Regular overlapping-window workload: task i needs files
    ``[i*step, i*step + span)``.

    ``seed`` is accepted for interface symmetry but unused — the
    workload is fully deterministic.
    """
    if span < 1 or step < 1:
        raise ValueError("span and step must be >= 1")
    num_files = (num_tasks - 1) * step + span
    tasks = [
        Task(task_id=i,
             files=frozenset(range(i * step, i * step + span)),
             flops=flops_per_file * span)
        for i in range(num_tasks)
    ]
    return Job(tasks, FileCatalog(num_files, default_size=file_size),
               name="window")
