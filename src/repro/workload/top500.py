"""Synthetic Top500-style worker speeds.

The paper draws each worker's compute capacity from the Top500 list and
divides it by 100 ("most of the 500 machines are too powerful").  The
list itself is not available offline, so we model its Rmax-vs-rank curve
with the power law that fits the 2006-era lists well:

    Rmax(rank) ~= Rmax(1) * rank ** -alpha

with ``Rmax(1)`` ≈ 280 TFLOPS (BlueGene/L) and ``alpha`` chosen so rank
500 lands at ≈ 2.7 TFLOPS.  Only the *spread* of speeds matters to the
simulation — heterogeneous workers finish compute phases at different
times, de-synchronising data-server arrivals.
"""

from __future__ import annotations

import math
import random
from typing import List

#: Rank-1 machine, in MFLOPS (280 TFLOPS).
RMAX_TOP_MFLOPS = 280.0e6
#: Rank-500 machine, in MFLOPS (2.7 TFLOPS).
RMAX_BOTTOM_MFLOPS = 2.7e6
#: List length.
LIST_SIZE = 500
#: The paper divides sampled speeds by 100.
PAPER_DIVISOR = 100.0

_ALPHA = math.log(RMAX_TOP_MFLOPS / RMAX_BOTTOM_MFLOPS) / math.log(LIST_SIZE)


def rmax_mflops(rank: int) -> float:
    """Modelled Rmax (MFLOPS) of the machine at ``rank`` (1-based)."""
    if not 1 <= rank <= LIST_SIZE:
        raise ValueError(f"rank must be in [1, {LIST_SIZE}], got {rank}")
    return RMAX_TOP_MFLOPS * rank ** (-_ALPHA)


def sample_speed(rng: random.Random) -> float:
    """One worker speed in MFLOPS: random list entry divided by 100."""
    return rmax_mflops(rng.randint(1, LIST_SIZE)) / PAPER_DIVISOR


def sample_speeds(rng: random.Random, count: int) -> List[float]:
    """``count`` independent worker speeds (MFLOPS)."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return [sample_speed(rng) for _ in range(count)]
