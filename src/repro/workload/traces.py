"""Workload (de)serialization.

Jobs round-trip through a compact JSON document so generated workloads
can be archived, diffed, and re-run exactly.  File sets are stored as
sorted id lists; the catalog stores only the default size plus explicit
overrides.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..grid.files import FileCatalog
from ..grid.job import Job, Task

FORMAT_VERSION = 1


def job_to_dict(job: Job) -> dict:
    """Serialize ``job`` to a JSON-compatible dict."""
    catalog = job.catalog
    overrides = {
        str(fid): catalog.size(fid)
        for fid in range(len(catalog))
        if catalog.size(fid) != catalog.default_size
    }
    return {
        "version": FORMAT_VERSION,
        "name": job.name,
        "catalog": {
            "num_files": len(catalog),
            "default_size": catalog.default_size,
            "sizes": overrides,
        },
        "tasks": [
            {
                "id": task.task_id,
                "files": sorted(task.files),
                "flops": task.flops,
            }
            for task in job
        ],
    }


def job_from_dict(data: dict) -> Job:
    """Rebuild a :class:`Job` from :func:`job_to_dict` output."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported workload format version {version!r}")
    cat = data["catalog"]
    catalog = FileCatalog(
        cat["num_files"],
        default_size=cat["default_size"],
        sizes={int(fid): size for fid, size in cat.get("sizes", {}).items()},
    )
    tasks = [
        Task(task_id=entry["id"], files=frozenset(entry["files"]),
             flops=entry["flops"])
        for entry in data["tasks"]
    ]
    return Job(tasks, catalog, name=data.get("name", "job"))


def save_job(job: Job, path: Union[str, Path]) -> None:
    """Write ``job`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(job_to_dict(job)))


def load_job(path: Union[str, Path]) -> Job:
    """Read a job previously written by :func:`save_job`."""
    return job_from_dict(json.loads(Path(path).read_text()))
