"""Shared fixtures: small environments, topologies, jobs, grids."""

import random

import pytest

from repro.grid.cluster import Grid
from repro.grid.files import FileCatalog
from repro.grid.job import Job, Task
from repro.net.tiers import TiersParams, generate as generate_tiers
from repro.net.topology import Topology
from repro.sim.engine import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def two_node_topology():
    """a --(10 B/s, 1s)-- b"""
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    topo.add_link("a", "b", bandwidth=10.0, latency=1.0)
    return topo


def make_job(task_files, num_files=None, file_size=1024.0, flops=0.0):
    """Build a Job from a list of file-id collections."""
    max_fid = max((fid for files in task_files for fid in files),
                  default=-1)
    catalog = FileCatalog(num_files or (max_fid + 1),
                          default_size=file_size)
    tasks = [Task(task_id=i, files=frozenset(files), flops=flops)
             for i, files in enumerate(task_files)]
    return Job(tasks, catalog)


@pytest.fixture
def tiny_job():
    """4 tasks over 6 files with heavy overlap."""
    return make_job([{0, 1, 2}, {1, 2, 3}, {2, 3, 4}, {3, 4, 5}])


def make_grid(env, job, num_sites=2, workers_per_site=1,
              capacity_files=100, speed_mflops=1000.0, seed=1,
              trace=None):
    """A small grid over a generated Tiers topology."""
    grid_topology = generate_tiers(TiersParams(num_sites=num_sites),
                                   seed=seed)
    speeds = [[speed_mflops] * workers_per_site for _ in range(num_sites)]
    return Grid(env, grid_topology, job, capacity_files, speeds,
                trace=trace)


@pytest.fixture
def rng():
    return random.Random(12345)
