"""TraceBus and post-hoc metric extraction."""

import pytest

from repro.analysis import (BatchServed, FileTransferred, TaskAssigned,
                            TaskCompleted, TaskStarted, TraceBus)
from repro.analysis.metrics import (aggregate_sites, makespan_from_trace,
                                    queue_waits, site_batch_records,
                                    summarize_sites, transfers_by_site,
                                    worker_utilization)
from repro.grid.data_server import DataServerStats


def test_bus_stores_and_counts():
    bus = TraceBus()
    bus.emit(TaskCompleted(time=1.0, task_id=0, worker="w", site=0))
    bus.emit(TaskCompleted(time=2.0, task_id=1, worker="w", site=0))
    assert bus.count(TaskCompleted) == 2
    assert len(bus.of_type(TaskCompleted)) == 2
    assert bus.count(TaskStarted) == 0


def test_bus_without_keep_only_counts():
    bus = TraceBus(keep=False)
    bus.emit(TaskCompleted(time=1.0, task_id=0, worker="w", site=0))
    assert bus.records == []
    assert bus.count(TaskCompleted) == 1


def test_bus_listeners_fire_even_without_keep():
    bus = TraceBus(keep=False)
    seen = []
    bus.subscribe(TaskCompleted, seen.append)
    record = TaskCompleted(time=1.0, task_id=0, worker="w", site=0)
    bus.emit(record)
    assert seen == [record]


def test_listener_type_filtering():
    bus = TraceBus()
    completed, started = [], []
    bus.subscribe(TaskCompleted, completed.append)
    bus.subscribe(TaskStarted, started.append)
    bus.emit(TaskStarted(time=0.0, task_id=0, worker="w", site=0))
    assert len(started) == 1 and completed == []


def test_makespan_from_trace():
    bus = TraceBus()
    for t in (5.0, 9.0, 3.0):
        bus.emit(TaskCompleted(time=t, task_id=int(t), worker="w", site=0))
    assert makespan_from_trace(bus) == 9.0


def test_makespan_requires_records():
    with pytest.raises(ValueError):
        makespan_from_trace(TraceBus())


def test_queue_waits_first_assignment_wins():
    bus = TraceBus()
    bus.emit(TaskAssigned(time=1.0, task_id=0, worker="a", site=0))
    bus.emit(TaskAssigned(time=5.0, task_id=0, worker="b", site=1))
    bus.emit(TaskStarted(time=7.0, task_id=0, worker="b", site=1))
    assert queue_waits(bus) == {0: 6.0}


def test_transfers_by_site():
    bus = TraceBus()
    for site in (0, 0, 1):
        bus.emit(FileTransferred(time=0.0, file_id=1, site=site,
                                 size=10.0, duration=1.0))
    assert transfers_by_site(bus) == {0: 2, 1: 1}


def test_site_batch_records_filters():
    bus = TraceBus()
    for site in (0, 1, 0):
        bus.emit(BatchServed(time=0.0, site=site, worker="w", num_files=1,
                             num_transfers=1, waiting_time=0.0,
                             transfer_time=1.0, cancelled=False))
    assert len(site_batch_records(bus, 0)) == 2


def test_worker_utilization():
    bus = TraceBus()
    bus.emit(TaskStarted(time=0.0, task_id=0, worker="w", site=0))
    bus.emit(TaskCompleted(time=5.0, task_id=0, worker="w", site=0))
    bus.emit(TaskStarted(time=6.0, task_id=1, worker="w", site=0))
    bus.emit(TaskCompleted(time=10.0, task_id=1, worker="w", site=0))
    util = worker_utilization(bus, makespan=10.0)
    assert util == {"w": pytest.approx(0.9)}
    with pytest.raises(ValueError):
        worker_utilization(bus, makespan=0.0)


def test_cancelled_tasks_excluded_from_utilization():
    bus = TraceBus()
    bus.emit(TaskStarted(time=0.0, task_id=0, worker="w", site=0))
    # no completion for task 0 (it was cancelled)
    util = worker_utilization(bus, makespan=10.0)
    assert util == {}


def make_stats(served, wait, xfer, transfers):
    return DataServerStats(requests_served=served,
                           total_waiting_time=wait,
                           total_transfer_time=xfer,
                           total_transfers=transfers)


def test_summarize_sites():
    summaries = summarize_sites([make_stats(2, 10.0, 20.0, 6),
                                 make_stats(0, 0.0, 0.0, 0)])
    assert summaries[0].avg_waiting_time == pytest.approx(5.0)
    assert summaries[0].avg_transfers == pytest.approx(3.0)
    assert summaries[1].avg_waiting_time == 0.0
    assert summaries[0].avg_waiting_hours == pytest.approx(5.0 / 3600)


def test_aggregate_sites_weighted():
    pooled = aggregate_sites([make_stats(1, 10.0, 10.0, 2),
                              make_stats(3, 10.0, 30.0, 10)])
    assert pooled.requests == 4
    assert pooled.avg_waiting_time == pytest.approx(5.0)
    assert pooled.avg_transfers == pytest.approx(3.0)


def test_aggregate_sites_empty():
    pooled = aggregate_sites([make_stats(0, 0, 0, 0)])
    assert pooled.requests == 0
    assert pooled.avg_waiting_time == 0.0
