"""Analytic makespan lower bounds."""

import pytest

from repro.analysis.bounds import compute_bounds, efficiency
from repro.exp import ExperimentConfig, run_experiment
from repro.exp.runner import build_job


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(scheduler="rest.2", num_tasks=60,
                            num_sites=3, capacity_files=600)


@pytest.fixture(scope="module")
def bounds(config):
    return compute_bounds(config)


@pytest.fixture(scope="module")
def result(config):
    return run_experiment(config)


def test_bounds_positive(bounds):
    assert bounds.bandwidth_bound > 0
    assert bounds.compute_bound > 0
    assert bounds.critical_task_bound > 0


def test_best_is_max(bounds):
    assert bounds.best == max(bounds.bandwidth_bound,
                              bounds.compute_bound,
                              bounds.critical_task_bound)


def test_every_bound_below_any_real_makespan(bounds, result):
    assert bounds.best <= result.makespan


def test_efficiency_in_unit_interval(bounds, result):
    value = efficiency(result, bounds)
    assert 0.0 < value <= 1.0


def test_efficiency_recomputes_bounds(result):
    assert efficiency(result) == pytest.approx(
        efficiency(result, compute_bounds(result.config)))


def test_efficiency_rejects_zero_makespan(result, bounds):
    import dataclasses
    broken = dataclasses.replace(result, makespan=0.0)
    with pytest.raises(ValueError):
        efficiency(broken, bounds)


def test_bandwidth_bound_scales_with_file_size(config):
    small = compute_bounds(config.with_changes(file_size_mb=5.0))
    large = compute_bounds(config.with_changes(file_size_mb=50.0))
    assert large.bandwidth_bound == pytest.approx(
        10 * small.bandwidth_bound, rel=1e-6)


def test_compute_bound_scales_with_flops(config):
    light = compute_bounds(config.with_changes(flops_per_file=1e9))
    heavy = compute_bounds(config.with_changes(flops_per_file=1e11))
    assert heavy.compute_bound == pytest.approx(
        100 * light.compute_bound, rel=1e-6)


def test_bounds_reuse_supplied_job(config):
    job = build_job(config)
    a = compute_bounds(config, job=job)
    b = compute_bounds(config)
    assert a.bandwidth_bound == pytest.approx(b.bandwidth_bound)


def test_good_scheduler_has_reasonable_efficiency(result, bounds):
    """rest.2 should land within a sane factor of the floor (serial
    data servers and imperfect sharing keep it well below 1)."""
    value = efficiency(result, bounds)
    assert value > 0.05
