"""Statistical comparison helpers."""

import pytest

from repro.analysis.compare import (format_ranking,
    rank_algorithms,
    significantly_less,
    summarize,
    welch_t)


def test_summarize_basic():
    summary = summarize([2.0, 4.0, 6.0])
    assert summary.n == 3
    assert summary.mean == pytest.approx(4.0)
    assert summary.stddev == pytest.approx(2.0)
    # t(2, 95%) = 4.303; ci = 4.303 * 2/sqrt(3)
    assert summary.ci95 == pytest.approx(4.303 * 2 / 3 ** 0.5, rel=1e-3)
    assert summary.low == pytest.approx(summary.mean - summary.ci95)
    assert summary.high == pytest.approx(summary.mean + summary.ci95)


def test_summarize_single_value():
    summary = summarize([5.0])
    assert summary.mean == 5.0
    assert summary.stddev == 0.0
    assert summary.ci95 == 0.0


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_summarize_constant_sample():
    summary = summarize([3.0, 3.0, 3.0, 3.0])
    assert summary.stddev == 0.0
    assert summary.ci95 == 0.0


def test_welch_t_sign():
    low = [1.0, 1.1, 0.9, 1.05]
    high = [2.0, 2.1, 1.9, 2.05]
    assert welch_t(low, high) < 0
    assert welch_t(high, low) > 0


def test_welch_t_degenerate():
    assert welch_t([1.0], [2.0]) == 0.0
    assert welch_t([1.0, 1.0], [1.0, 1.0]) == 0.0


def test_significantly_less():
    low = [1.0, 1.1, 0.9, 1.05, 1.02]
    high = [2.0, 2.1, 1.9, 2.05, 2.02]
    assert significantly_less(low, high)
    assert not significantly_less(high, low)
    assert not significantly_less(low, low)


def test_rank_algorithms_orders_by_mean():
    ranking = rank_algorithms({
        "slow": [10.0, 11.0, 10.5],
        "fast": [5.0, 5.2, 4.9],
        "mid": [7.0, 7.1, 7.2],
    })
    assert [row.name for row in ranking] == ["fast", "mid", "slow"]
    assert ranking[0].clearly_worse_than_best is False
    assert ranking[-1].clearly_worse_than_best is True


def test_rank_algorithms_overlapping_cis_not_flagged():
    ranking = rank_algorithms({
        "a": [10.0, 20.0],     # wide CI
        "b": [12.0, 22.0],
    })
    assert not ranking[1].clearly_worse_than_best


def test_rank_algorithms_empty_rejected():
    with pytest.raises(ValueError):
        rank_algorithms({})


def test_format_ranking_output():
    ranking = rank_algorithms({"a": [1.0, 1.2], "b": [3.0, 3.3]})
    text = format_ranking(ranking, unit="min")
    assert "a" in text and "b" in text and "min" in text
    assert len(text.splitlines()) == 4  # header + 2 rows + footer
