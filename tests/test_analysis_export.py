"""Trace export / import round-trips."""

import pytest

from repro.analysis.export import (RECORD_TYPES, export_trace, import_trace,
                                   iter_trace, record_from_dict,
                                   record_to_dict)
from repro.analysis.trace import (FileTransferred, TaskCompleted, TraceBus)


def test_record_types_discovered():
    assert "TaskCompleted" in RECORD_TYPES
    assert "FileTransferred" in RECORD_TYPES
    assert "BatchServed" in RECORD_TYPES
    assert "TraceRecord" not in RECORD_TYPES


def test_record_roundtrip():
    record = TaskCompleted(time=3.5, task_id=7, worker="w1", site=2)
    assert record_from_dict(record_to_dict(record)) == record


def test_unknown_type_rejected():
    with pytest.raises(ValueError):
        record_from_dict({"type": "Bogus", "time": 0.0})


def test_export_import_file(tmp_path):
    bus = TraceBus()
    bus.emit(TaskCompleted(time=1.0, task_id=0, worker="w", site=0))
    bus.emit(FileTransferred(time=2.0, file_id=9, site=1, size=10.0,
                             duration=0.5))
    path = tmp_path / "trace.jsonl"
    assert export_trace(bus, path) == 2
    loaded = import_trace(path)
    assert loaded.records == bus.records
    assert loaded.count(TaskCompleted) == 1


def test_iter_trace_streams(tmp_path):
    bus = TraceBus()
    for index in range(5):
        bus.emit(TaskCompleted(time=float(index), task_id=index,
                               worker="w", site=0))
    path = tmp_path / "trace.jsonl"
    export_trace(bus, path)
    streamed = list(iter_trace(path))
    assert len(streamed) == 5
    assert streamed[3].task_id == 3


def test_real_run_roundtrip(tmp_path):
    from repro.exp import ExperimentConfig, run_experiment
    result = run_experiment(ExperimentConfig(
        scheduler="rest", num_tasks=20, num_sites=2, capacity_files=400,
        keep_trace=True))
    path = tmp_path / "run.jsonl"
    count = export_trace(result.trace, path)
    assert count == len(result.trace.records) > 0
    loaded = import_trace(path)
    # derived analyses agree on the reloaded trace
    from repro.analysis.metrics import makespan_from_trace
    assert makespan_from_trace(loaded) == pytest.approx(result.makespan)
