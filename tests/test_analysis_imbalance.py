"""Site load imbalance: the paper's 'unbalanced task assignments'."""

import pytest

from repro.analysis.metrics import load_imbalance, site_task_counts
from repro.analysis.trace import TaskAssigned, TaskCompleted, TraceBus
from repro.exp import ExperimentConfig, run_experiment


def test_load_imbalance_even():
    assert load_imbalance({0: 5, 1: 5}) == pytest.approx(1.0)


def test_load_imbalance_skewed():
    assert load_imbalance({0: 9, 1: 1}) == pytest.approx(1.8)


def test_load_imbalance_counts_empty_sites():
    assert load_imbalance({0: 10}, num_sites=2) == pytest.approx(2.0)


def test_load_imbalance_validation():
    with pytest.raises(ValueError):
        load_imbalance({})
    with pytest.raises(ValueError):
        load_imbalance({0: 1}, num_sites=0)


def test_site_task_counts_dedupes_replicas():
    bus = TraceBus()
    bus.emit(TaskCompleted(time=1.0, task_id=0, worker="a", site=0))
    bus.emit(TaskCompleted(time=1.1, task_id=0, worker="b", site=1))
    bus.emit(TaskCompleted(time=2.0, task_id=1, worker="a", site=0))
    assert site_task_counts(bus) == {0: 2}


def test_site_task_counts_assignments_mode():
    bus = TraceBus()
    bus.emit(TaskAssigned(time=0.0, task_id=0, worker="a", site=2))
    bus.emit(TaskAssigned(time=0.0, task_id=0, worker="b", site=0))
    assert site_task_counts(bus, completed_only=False) == {2: 1}


def test_push_assignment_more_imbalanced_than_pull_execution():
    """Section 3.1: storage affinity's initial distribution piles tasks
    onto data-rich sites; worker-centric execution is demand-driven."""
    base = dict(num_tasks=120, num_sites=4, capacity_files=600,
                keep_trace=True)
    pull = run_experiment(ExperimentConfig(scheduler="rest", **base))
    push = run_experiment(ExperimentConfig(scheduler="storage-affinity",
                                           **base))
    pull_counts = site_task_counts(pull.trace)
    push_initial = site_task_counts(push.trace, completed_only=False)
    pull_imbalance = load_imbalance(pull_counts, num_sites=4)
    push_imbalance = load_imbalance(push_initial, num_sites=4)
    assert push_imbalance >= pull_imbalance, \
        "push initial assignment should be at least as imbalanced"
