"""ASCII chart rendering."""

import pytest

from repro.analysis.plotting import ascii_chart, chart_sweep


def test_basic_chart_structure():
    text = ascii_chart({"a": [(0, 0.0), (10, 100.0)]},
                       width=20, height=8, title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert any("*" in line for line in lines)
    assert any("+--" in line for line in lines)
    assert "* a" in lines[-1]


def test_two_series_get_distinct_marks():
    text = ascii_chart({
        "up": [(0, 0.0), (10, 100.0)],
        "down": [(0, 100.0), (10, 0.0)],
    }, width=20, height=8)
    assert "* up" in text and "o down" in text
    assert "o" in text.splitlines()[1]  # down starts at the top


def test_monotone_series_renders_monotone():
    text = ascii_chart({"a": [(0, 0.0), (5, 50.0), (10, 100.0)]},
                       width=30, height=10)
    rows = [line.split("|", 1)[1] for line in text.splitlines()
            if "|" in line]
    # row index of the mark in each column (smaller index = higher y)
    row_of_col = {}
    for row_index, row in enumerate(rows):
        for col, char in enumerate(row):
            if char == "*":
                row_of_col.setdefault(col, row_index)
    columns = sorted(row_of_col)
    rows_in_col_order = [row_of_col[c] for c in columns]
    # as x grows, y grows, so the row index must not increase
    assert rows_in_col_order == sorted(rows_in_col_order, reverse=True)
    # endpoints: left column at the bottom row band, right at the top
    assert row_of_col[columns[0]] > row_of_col[columns[-1]]


def test_flat_series_does_not_crash():
    text = ascii_chart({"flat": [(0, 5.0), (10, 5.0)]},
                       width=20, height=8)
    assert "*" in text


def test_axis_labels_present():
    text = ascii_chart({"a": [(0, 0.0), (1, 1.0)]}, width=20, height=8,
                       x_label="capacity", y_label="makespan")
    assert "x: capacity" in text and "y: makespan" in text


def test_empty_rejected():
    with pytest.raises(ValueError):
        ascii_chart({})
    with pytest.raises(ValueError):
        ascii_chart({"a": []})


def test_tiny_raster_rejected():
    with pytest.raises(ValueError):
        ascii_chart({"a": [(0, 1.0)]}, width=4, height=3)


def test_chart_sweep_integration():
    from repro.exp import ExperimentConfig, run_sweep
    sweep = run_sweep(
        ExperimentConfig(num_tasks=20, num_sites=2, capacity_files=400),
        "capacity_files", (200, 400), ("rest",), topology_seeds=(0,))
    text = chart_sweep(sweep, width=30, height=8)
    assert "rest" in text
    assert "x: capacity_files" in text
