"""Worker timeline reconstruction and Gantt rendering."""

import pytest

from repro.analysis.timeline import (Span, gantt, phase_totals,
                                     worker_spans)
from repro.analysis.trace import (TaskAssigned, TaskCancelled,
                                  TaskCompleted, TaskStarted, TraceBus)


def synthetic_trace():
    bus = TraceBus()
    # worker w1: task 0 fetch 0-10, compute 10-30
    bus.emit(TaskAssigned(time=0.0, task_id=0, worker="w1", site=0))
    bus.emit(TaskStarted(time=10.0, task_id=0, worker="w1", site=0))
    bus.emit(TaskCompleted(time=30.0, task_id=0, worker="w1", site=0))
    # worker w2: task 1 fetch 5-15, cancelled at 15
    bus.emit(TaskAssigned(time=5.0, task_id=1, worker="w2", site=1))
    bus.emit(TaskCancelled(time=15.0, task_id=1, worker="w2", site=1))
    return bus


def test_worker_spans_reconstruct_phases():
    spans = worker_spans(synthetic_trace())
    assert spans["w1"] == [
        Span(0, "fetch", 0.0, 10.0),
        Span(0, "compute", 10.0, 30.0),
    ]
    assert spans["w2"] == [Span(1, "fetch", 5.0, 15.0)]


def test_phase_totals():
    spans = worker_spans(synthetic_trace())
    totals = phase_totals(spans, makespan=30.0)
    idle, fetch, compute = totals["w1"]
    assert idle == pytest.approx(0.0)
    assert fetch == pytest.approx(10 / 30)
    assert compute == pytest.approx(20 / 30)
    idle2, fetch2, compute2 = totals["w2"]
    assert fetch2 == pytest.approx(10 / 30)
    assert compute2 == 0.0


def test_phase_totals_validation():
    with pytest.raises(ValueError):
        phase_totals({}, makespan=0.0)


def test_gantt_renders_rows():
    text = gantt(synthetic_trace(), width=30)
    lines = text.splitlines()
    assert lines[0].startswith("      w1 |")
    assert "#" in lines[0] and "-" in lines[0]
    assert "-" in lines[1] and "#" not in lines[1]
    assert "compute" in text and "idle" in text


def test_gantt_empty_trace_rejected():
    with pytest.raises(ValueError):
        gantt(TraceBus())


def test_gantt_width_validation():
    with pytest.raises(ValueError):
        gantt(synthetic_trace(), width=5)


def test_gantt_on_real_run():
    from repro.exp import ExperimentConfig, run_experiment
    result = run_experiment(ExperimentConfig(
        scheduler="rest", num_tasks=20, num_sites=2, capacity_files=400,
        keep_trace=True))
    text = gantt(result.trace, makespan=result.makespan, width=40)
    assert text.count("|") >= 4  # two workers, two bars each
    spans = worker_spans(result.trace)
    totals = phase_totals(spans, result.makespan)
    for idle, fetch, compute in totals.values():
        assert 0.0 <= idle <= 1.0
        assert fetch + compute <= 1.0 + 1e-9


def test_compute_wins_collisions():
    bus = TraceBus()
    bus.emit(TaskAssigned(time=0.0, task_id=0, worker="w", site=0))
    bus.emit(TaskStarted(time=0.5, task_id=0, worker="w", site=0))
    bus.emit(TaskCompleted(time=100.0, task_id=0, worker="w", site=0))
    text = gantt(bus, width=20).splitlines()[0]
    # the tiny fetch shares the first cell with compute; compute wins
    assert text.count("#") >= 18
