"""Multi-job campaigns: workload fusion and sequential execution."""

import pytest

from repro.exp import ExperimentConfig
from repro.exp.campaign import run_campaign
from repro.grid.files import FileCatalog
from repro.grid.job import Job, Task
from repro.workload.campaign import coadd_campaign, concat_jobs
from repro.workload.coadd import CoaddParams


def two_jobs_shared_catalog():
    catalog = FileCatalog(10)
    job_a = Job([Task(0, frozenset({0, 1})), Task(1, frozenset({1, 2}))],
                catalog, name="a")
    job_b = Job([Task(0, frozenset({2, 3}))], catalog, name="b")
    return job_a, job_b


# -- fusion -----------------------------------------------------------------

def test_concat_jobs_renumbers():
    job_a, job_b = two_jobs_shared_catalog()
    campaign = concat_jobs([job_a, job_b], names=["a", "b"])
    assert len(campaign.job) == 3
    assert [t.task_id for t in campaign.job] == [0, 1, 2]
    assert campaign.members[0].task_ids == range(0, 2)
    assert campaign.members[1].task_ids == range(2, 3)
    assert campaign.members[1].name == "b"


def test_concat_jobs_requires_shared_catalog():
    job_a, _ = two_jobs_shared_catalog()
    other = Job([Task(0, frozenset({0}))], FileCatalog(5))
    with pytest.raises(ValueError):
        concat_jobs([job_a, other])


def test_concat_jobs_empty_rejected():
    with pytest.raises(ValueError):
        concat_jobs([])


def test_member_tasks_lookup():
    job_a, job_b = two_jobs_shared_catalog()
    campaign = concat_jobs([job_a, job_b])
    tasks = campaign.member_tasks(1)
    assert len(tasks) == 1
    assert tasks[0].files == frozenset({2, 3})


# -- coadd campaign ------------------------------------------------------------

@pytest.fixture(scope="module")
def small_campaign():
    return coadd_campaign(CoaddParams(num_tasks=60), num_jobs=3, seed=2)


def test_coadd_campaign_shape(small_campaign):
    assert len(small_campaign.members) == 3
    assert len(small_campaign.job) == 180
    assert all(m.num_tasks == 60 for m in small_campaign.members)


def test_passes_share_field_files(small_campaign):
    """Later passes must reuse most of the first pass's files."""
    first = set()
    for task in small_campaign.member_tasks(0):
        first.update(task.files)
    second = set()
    for task in small_campaign.member_tasks(1):
        second.update(task.files)
    shared = len(first & second)
    assert shared / len(second) > 0.6


def test_passes_differ_in_exact_inputs(small_campaign):
    first = {t.files for t in small_campaign.member_tasks(0)}
    second = {t.files for t in small_campaign.member_tasks(1)}
    assert first != second


def test_campaign_deterministic():
    a = coadd_campaign(CoaddParams(num_tasks=30), num_jobs=2, seed=3)
    b = coadd_campaign(CoaddParams(num_tasks=30), num_jobs=2, seed=3)
    assert all(ta.files == tb.files for ta, tb in zip(a.job, b.job))


def test_campaign_validation():
    with pytest.raises(ValueError):
        coadd_campaign(CoaddParams(num_tasks=10), num_jobs=0)


# -- execution -----------------------------------------------------------------

@pytest.fixture(scope="module")
def campaign_result(small_campaign):
    config = ExperimentConfig(scheduler="rest.2", num_tasks=1,
                              num_sites=3, capacity_files=800)
    return run_campaign(config, small_campaign, mode="sequential")


def test_all_passes_complete(campaign_result):
    assert len(campaign_result.passes) == 3
    for index, pass_result in enumerate(campaign_result.passes):
        assert pass_result.completed_at is not None
        assert pass_result.duration > 0


def test_passes_run_in_order(campaign_result):
    times = [p.completed_at for p in campaign_result.passes]
    releases = [p.released_at for p in campaign_result.passes]
    assert releases[0] == 0.0
    for previous_done, released in zip(times, releases[1:]):
        assert released == pytest.approx(previous_done)


def test_interjob_reuse_speeds_up_later_passes(campaign_result):
    first, *rest = campaign_result.passes
    assert all(p.transfers_in_period < 0.7 * first.transfers_in_period
               for p in rest), "warm caches must cut transfers"
    assert min(p.duration for p in rest) < first.duration


def test_transfer_attribution_sums(campaign_result):
    assert sum(p.transfers_in_period for p in campaign_result.passes) \
        == campaign_result.file_transfers


def test_immediate_mode_runs(small_campaign):
    config = ExperimentConfig(scheduler="rest.2", num_tasks=1,
                              num_sites=3, capacity_files=800)
    result = run_campaign(config, small_campaign, mode="immediate")
    assert result.makespan > 0
    assert len(result.passes) == 3


def test_bad_mode_rejected(small_campaign):
    config = ExperimentConfig(num_tasks=1)
    with pytest.raises(ValueError):
        run_campaign(config, small_campaign, mode="nope")


def test_offline_scheduler_rejected_for_sequential(small_campaign):
    config = ExperimentConfig(scheduler="storage-affinity", num_tasks=1,
                              num_sites=3, capacity_files=800)
    with pytest.raises(ValueError):
        run_campaign(config, small_campaign, mode="sequential")
