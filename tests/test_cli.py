"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_command(capsys):
    code, out = run_cli(capsys, "run", "--scheduler", "rest",
                        "--tasks", "30", "--sites", "2",
                        "--capacity", "400")
    assert code == 0
    assert "makespan" in out
    assert "file transfers" in out


def test_run_command_rejects_bad_scheduler(capsys):
    with pytest.raises(ValueError):
        main(["run", "--scheduler", "bogus", "--tasks", "10"])


def test_compare_command(capsys):
    code, out = run_cli(capsys, "compare", "--tasks", "30", "--sites", "2",
                        "--capacity", "400", "--topologies", "2",
                        "--schedulers", "rest", "workqueue")
    assert code == 0
    assert "rest" in out and "workqueue" in out
    assert "lower is better" in out


def test_sweep_command(capsys):
    code, out = run_cli(capsys, "sweep", "--tasks", "30", "--sites", "2",
                        "--field", "capacity_files",
                        "--values", "300", "500",
                        "--schedulers", "rest")
    assert code == 0
    assert "capacity_files" in out
    assert "300" in out and "500" in out


def test_sweep_command_float_and_string_values(capsys):
    code, out = run_cli(capsys, "sweep", "--tasks", "30", "--sites", "2",
                        "--field", "file_size_mb",
                        "--values", "5.0", "25.0",
                        "--schedulers", "rest")
    assert code == 0
    assert "5.0" in out


def test_workload_command(capsys, tmp_path):
    out_path = tmp_path / "job.json"
    code, out = run_cli(capsys, "workload", "--tasks", "25",
                        "--out", str(out_path))
    assert code == 0
    assert "Total number of files" in out
    assert out_path.exists()
    from repro.workload.traces import load_job
    assert len(load_job(out_path)) == 25


def test_workload_command_without_out(capsys):
    code, out = run_cli(capsys, "workload", "--tasks", "25")
    assert code == 0
    assert "reference CDF" in out


def test_figures_table2(capsys):
    code, out = run_cli(capsys, "figures", "--name", "table2",
                        "--scale", "small")
    assert code == 0
    assert "Total number of files" in out


def test_figures_rejects_unknown(capsys):
    with pytest.raises(SystemExit):
        main(["figures", "--name", "fig99"])


def test_compare_uses_task_order_flag(capsys):
    code, out = run_cli(capsys, "run", "--tasks", "30", "--sites", "2",
                        "--capacity", "400", "--task-order", "natural",
                        "--scheduler", "rest")
    assert code == 0


def test_serve_parser_flags():
    args = build_parser().parse_args(
        ["serve", "--port", "0", "--metric", "rest", "--n", "1"])
    assert args.port == 0
    assert args.metric == "rest"
    assert args.func is not None


def test_load_parser_reuses_config_arguments():
    args = build_parser().parse_args(
        ["load", "--port", "7077", "--tasks", "500",
         "--sites", "4", "--workers", "2"])
    assert args.tasks == 500
    assert args.sites == 4 and args.workers == 2
    assert not args.no_drain
