"""Full-process cluster e2e: kill -9 a shard, recover, exactly once.

These tests drive the real CLI in subprocesses — ``repro cluster``
spawning real ``repro serve`` shards — because the guarantee under
test is process-level: a SIGKILL'd shard must come back from its
snapshot + WAL tail with every completion intact.  The client runs
in-process so the report and event log are directly inspectable.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cluster import run_cluster_load
from repro.exp import ExperimentConfig
from repro.exp.runner import build_job
from repro.obs.events import iter_events
from repro.serve.loadgen import run_load

pytestmark = pytest.mark.skipif(os.name != "posix",
                                reason="kill -9 semantics are POSIX")

TIMEOUT = 120
REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=TIMEOUT))


def coadd_job(num_tasks, seed=0):
    return build_job(ExperimentConfig(num_tasks=num_tasks,
                                      capacity_files=500, seed=seed))


def cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def spawn_cli(args, log_path):
    handle = open(log_path, "w", encoding="utf-8")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=handle, stderr=subprocess.STDOUT, env=cli_env())
    return proc, handle


def wait_for_json(path, predicate, deadline, what):
    while time.monotonic() < deadline:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if predicate(payload):
                return payload
        except (FileNotFoundError, json.JSONDecodeError):
            pass
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {what} in {path}")


def test_serve_port_zero_reports_bound_ports_via_port_file(tmp_path):
    """Satellite: ``--port 0`` + ``--port-file`` is the ephemeral-port
    handshake every supervisor-spawned shard relies on."""
    port_file = str(tmp_path / "port.json")
    proc, handle = spawn_cli(
        ["serve", "--port", "0", "--metrics-port", "0",
         "--port-file", port_file, "--state-dir",
         str(tmp_path / "state")],
        str(tmp_path / "serve.log"))
    try:
        ports = wait_for_json(
            port_file, lambda p: isinstance(p.get("port"), int),
            time.monotonic() + 30, "bound ports")
        assert ports["port"] > 0
        assert isinstance(ports["metrics_port"], int)
        assert ports["metrics_port"] > 0
        assert ports["port"] != ports["metrics_port"]

        async def drive():
            return await run_load("127.0.0.1", ports["port"],
                                  coadd_job(6), workers=1, sites=1,
                                  capacity_files=400, drain=True)

        report = run(drive())
        assert report["tasks_done"] == 6
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        handle.close()
    log_text = open(str(tmp_path / "serve.log"),
                    encoding="utf-8").read()
    assert f"listening on 127.0.0.1:{ports['port']}" in log_text
    assert "recovered from" in log_text  # durability was on


def shard_wal_completions(state_root, shard_count):
    """task_id -> completion count across every shard's whole WAL."""
    from repro.cluster.shard import wal_files
    counts = {}
    for index in range(shard_count):
        state_dir = os.path.join(state_root, f"shard-{index}")
        for path in wal_files(state_dir):
            for record in iter_events(path):
                if record["event"] == "complete":
                    task_id = record["task_id"]
                    counts[task_id] = counts.get(task_id, 0) + 1
    return counts


def test_cluster_survives_kill9_with_exactly_once_completion(tmp_path):
    """The acceptance scenario: 2 shards + router, one shard SIGKILL'd
    mid-load and restarted by the supervisor, every task completes
    exactly once, and the restart recovered from a snapshot + WAL
    tail rather than a cold start."""
    state_root = str(tmp_path / "cluster-state")
    event_log = str(tmp_path / "load-events.jsonl")
    proc, handle = spawn_cli(
        ["cluster", "--shards", "2", "--state-root", state_root,
         "--port", "0", "--metrics-port", "0",
         "--lease-ttl", "2", "--snapshot-interval", "0.3"],
        str(tmp_path / "cluster.log"))
    try:
        cluster = wait_for_json(
            os.path.join(state_root, "cluster.json"),
            lambda c: isinstance(c.get("router", {}).get("port"), int),
            time.monotonic() + 45, "router port")
        router_port = cluster["router"]["port"]
        jobs = [coadd_job(40, seed=seed) for seed in (1, 2, 3)]

        async def kill_shard_one():
            # Let snapshots and real progress accumulate first.
            await asyncio.sleep(1.0)
            with open(os.path.join(state_root, "cluster.json"),
                      encoding="utf-8") as fh:
                topology = json.load(fh)
            victim = topology["shards"][1]
            assert victim["shard"] == 1
            os.kill(victim["pid"], signal.SIGKILL)
            return victim["pid"]

        async def scenario():
            killer = asyncio.ensure_future(kill_shard_one())
            report = await run_cluster_load(
                "127.0.0.1", router_port, jobs, workers=4, sites=2,
                capacity_files=400, seconds_per_file=0.02,
                event_log=event_log, resume_window=45.0)
            return report, await killer

        report, killed_pid = run(scenario())

        # Every job finished, by the server's own books.
        assert report["shard_count"] == 2
        assert report["tasks_submitted"] == 120
        completed = sum(job["status"]["completed"]
                        for job in report["jobs"])
        assert completed == 120
        assert all(job["status"]["done"] for job in report["jobs"])
        # The crash was real and was ridden out, not avoided.
        assert report["reconnects"] >= 1

        # Exactly once, from the authoritative WAL timelines: every
        # task has exactly one accepted completion across both shards
        # and both incarnations of the killed one.
        counts = shard_wal_completions(state_root, 2)
        assert len(counts) == 120
        assert all(count == 1 for count in counts.values()), \
            {tid: c for tid, c in counts.items() if c != 1}
        # The client-side log saw no duplicate completion acks either.
        client_completes = [record["task_id"]
                           for record in iter_events(event_log)
                           if record["event"] == "complete"]
        assert len(client_completes) == len(set(client_completes))

        # The supervisor restarted shard 1 with a new pid...
        topology = wait_for_json(
            os.path.join(state_root, "cluster.json"),
            lambda c: c["shards"][1]["restarts"] >= 1,
            time.monotonic() + 10, "restart count")
        assert topology["shards"][1]["pid"] != killed_pid
        # ...and the new incarnation recovered warm: its startup line
        # names a snapshot sequence, not a cold start.
        shard_log = open(os.path.join(state_root, "shard-1",
                                      "shard-1.log"),
                         encoding="utf-8").read()
        recoveries = [line for line in shard_log.splitlines()
                      if "recovered from" in line]
        assert len(recoveries) == 2  # fresh boot + post-kill recovery
        assert "snapshot_seq=None" in recoveries[0]
        assert "snapshot_seq=None" not in recoveries[1]
        assert "snapshot_seq=" in recoveries[1]

        # The load generator drained the cluster: every shard exits
        # zero and the supervisor follows.
        assert proc.wait(timeout=45) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        handle.close()
