"""Router, redirect handshake, cluster clients and stat aggregation.

In-process clusters: real :class:`SchedulerServer` shards (id strides
set so ``job_id % shard_count`` names the owner), a real
:class:`ClusterRouter` in front, real TCP in between.  The capstone is
the determinism pin: a one-shard cluster must make **bit-identical**
decisions — winners, lease ids, and the engine's RNG state — to a
standalone ``repro serve``.
"""

import asyncio

from repro.cluster import (ClusterClient, ClusterRouter, ShardAddress,
                           aggregate_stats, run_cluster_load)
from repro.cluster.client import ClusterWorkerClient
from repro.exp import ExperimentConfig
from repro.exp.runner import build_job
from repro.serve import messages, protocol
from repro.serve.loadgen import run_load
from repro.serve.server import SchedulerServer
from repro.serve.service import SchedulerService

TIMEOUT = 60


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=TIMEOUT))


def coadd_job(num_tasks=30, seed=0):
    return build_job(ExperimentConfig(num_tasks=num_tasks,
                                      capacity_files=500, seed=seed))


async def start_cluster(shard_count=2, seed=7, retry_window=3.0,
                        upstream_codec="json"):
    """N in-process shard servers plus their router."""
    shards = []
    for index in range(shard_count):
        service = SchedulerService(
            metric="combined", n=2, seed=seed,
            name=f"shard-{index}", id_start=index,
            id_stride=shard_count, wal_events=True)
        server = SchedulerServer(service)
        await server.start()
        shards.append((service, server))
    router = ClusterRouter(
        [ShardAddress(index, server.host, server.port)
         for index, (_service, server) in enumerate(shards)],
        retry_window=retry_window, upstream_codec=upstream_codec)
    await router.start()
    return router, shards


async def stop_cluster(router, shards):
    await router.stop()
    for _service, server in shards:
        await server.stop()


async def raw_router_connection(router):
    return await asyncio.open_connection(
        router.host, router.port,
        limit=protocol.MAX_MESSAGE_BYTES + 1024)


async def raw_call(reader, writer, message):
    writer.write(message.encode())
    await writer.drain()
    return messages.decode_server(await reader.readline())


# -- handshake ---------------------------------------------------------------

def test_redirect_handshake_returns_the_shard_map():
    async def scenario():
        router, shards = await start_cluster(shard_count=3)
        try:
            async with ClusterClient(router.host,
                                     router.port) as client:
                assert client.shard_count == 3
                entries = client.shard_map()
                assert [entry["shard"] for entry in entries] == [0, 1, 2]
                for entry, (_service, server) in zip(entries, shards):
                    assert entry["port"] == server.port
            assert router.redirects_sent == 1
        finally:
            await stop_cluster(router, shards)

    run(scenario())


def test_cluster_client_degrades_against_a_plain_scheduler():
    async def scenario():
        service = SchedulerService(metric="rest", n=1)
        server = SchedulerServer(service)
        await server.start()
        try:
            async with ClusterClient(server.host,
                                     server.port) as client:
                assert client.redirect is None
                assert client.shard_count == 1
                assert client.shard_map()[0]["port"] == server.port
                handle = await client.submit(coadd_job(5))
                assert (await handle.status())["tasks"] == 5
        finally:
            await server.stop()

    run(scenario())


def test_old_client_hello_gets_a_clean_error_and_close():
    async def scenario():
        router, shards = await start_cluster()
        try:
            reader, writer = await raw_router_connection(router)
            reply = await raw_call(reader, writer, messages.Hello(
                worker="old", site=0,
                protocol=protocol.PROTOCOL_VERSION))
            assert isinstance(reply, messages.Error)
            assert "cluster router" in reply.error
            assert "accept_redirect" in reply.error
            assert await reader.readline() == b""  # clean close
            writer.close()
            await writer.wait_closed()
            assert router.rejected_hellos == 1
        finally:
            await stop_cluster(router, shards)

    run(scenario())


def test_data_plane_messages_are_refused_by_the_router():
    async def scenario():
        router, shards = await start_cluster()
        try:
            reader, writer = await raw_router_connection(router)
            reply = await raw_call(reader, writer, messages.Hello(
                worker="w0", site=0,
                protocol=protocol.PROTOCOL_VERSION,
                accept_redirect=True))
            assert isinstance(reply, messages.Redirect)
            reply = await raw_call(reader, writer,
                                   messages.RequestTask())
            assert isinstance(reply, messages.Error)
            assert "data-plane" in reply.error
            writer.close()
            await writer.wait_closed()
        finally:
            await stop_cluster(router, shards)

    run(scenario())


# -- routing -----------------------------------------------------------------

def test_submits_land_on_the_shard_owning_the_job_id():
    async def scenario():
        router, shards = await start_cluster(shard_count=2)
        try:
            async with ClusterClient(router.host,
                                     router.port) as client:
                first = await client.submit(coadd_job(6, seed=1))
                second = await client.submit(coadd_job(8, seed=2))
                third = await client.submit(coadd_job(4, seed=3))
            # Round-robin placement + strided id allocation: each
            # job id is congruent to its shard index.
            assert [first.job_id, second.job_id, third.job_id] \
                == [0, 1, 2]
            assert all(task_id % 2 == 0 for task_id in first.task_ids)
            assert all(task_id % 2 == 1 for task_id in second.task_ids)
            shard0, shard1 = shards[0][0], shards[1][0]
            assert sorted(job["job_id"]
                          for job in shard0.jobs_overview()) == [0, 2]
            assert sorted(job["job_id"]
                          for job in shard1.jobs_overview()) == [1]
        finally:
            await stop_cluster(router, shards)

    run(scenario())


def test_job_status_is_forwarded_to_the_owning_shard():
    async def scenario():
        router, shards = await start_cluster(shard_count=2)
        try:
            async with ClusterClient(router.host,
                                     router.port) as client:
                handles = [await client.submit(coadd_job(6, seed=n))
                           for n in range(2)]
                for handle in handles:
                    status = await handle.status()
                    assert status["job_id"] == handle.job_id
                    assert status["tasks"] == 6
        finally:
            await stop_cluster(router, shards)

    run(scenario())


def test_stats_request_returns_the_aggregated_cluster_view():
    async def scenario():
        router, shards = await start_cluster(shard_count=2)
        try:
            async with ClusterClient(router.host,
                                     router.port) as client:
                await client.submit(coadd_job(6, seed=1))
                await client.submit(coadd_job(8, seed=2))
                stats = await client.stats()
            assert stats["tasks_submitted"] == 14
            assert stats["cluster"] == {"shard_count": 2,
                                        "shards_reporting": 2}
            assert set(stats["shards"]) == {"0", "1"}
            assert stats["shards"]["0"]["tasks_submitted"] == 6
            assert stats["shards"]["1"]["tasks_submitted"] == 8
        finally:
            await stop_cluster(router, shards)

    run(scenario())


def test_aggregate_stats_marks_unreachable_shards():
    merged = aggregate_stats(
        [(0, {"tasks_submitted": 5, "completions": 2,
              "uptime_s": 9.0}),
         (1, None)],
        shard_count=2)
    assert merged["tasks_submitted"] == 5
    assert merged["cluster"] == {"shard_count": 2,
                                 "shards_reporting": 1}
    assert merged["shards"]["1"] == {"error": "shard unreachable"}


def test_router_rides_out_a_shard_moving_ports():
    """A forwarded call retries inside the window while the supervisor
    restarts the shard at a new address."""
    async def scenario():
        router, shards = await start_cluster(shard_count=2,
                                             retry_window=5.0)
        service0, server0 = shards[0]
        try:
            async with ClusterClient(router.host,
                                     router.port) as client:
                handle = await client.submit(coadd_job(6, seed=1))
                assert handle.job_id == 0
                await server0.stop()  # the shard "crashes"

                async def revive():
                    await asyncio.sleep(0.3)
                    new_server = SchedulerServer(service0)
                    await new_server.start()
                    router.update_shard(ShardAddress(
                        0, new_server.host, new_server.port))
                    return new_server

                revive_task = asyncio.ensure_future(revive())
                status = await handle.status()  # spans the outage
                shards[0] = (service0, await revive_task)
                assert status["tasks"] == 6
        finally:
            await stop_cluster(router, shards)

    run(scenario())


# -- cluster load + workers --------------------------------------------------

def test_cluster_load_completes_jobs_across_two_shards():
    async def scenario():
        router, shards = await start_cluster(shard_count=2)
        try:
            report = await run_cluster_load(
                router.host, router.port,
                [coadd_job(12, seed=1), coadd_job(14, seed=2)],
                workers=4, sites=2, capacity_files=400)
            assert report["shard_count"] == 2
            assert report["tasks_submitted"] == 26
            assert report["tasks_done"] == 26
            assert all(job["status"]["done"] for job in report["jobs"])
            assert report["stats"]["completions"] == 26
            # Each worker pulled from the shard owning its job.
            for summary in report["workers"]:
                assert summary["shard"] == summary["job_id"] % 2
                assert summary["stop_reason"] == "job-done"
            for service, _server in shards:
                assert service.draining
        finally:
            await stop_cluster(router, shards)

    run(scenario())


def test_cluster_load_runs_end_to_end_on_the_binary_codec():
    """``--codec binary`` cluster-wide: workers negotiate binary
    framing with their shards, the router upgrades its own upstream
    streams, and the run still completes with correct totals."""
    async def scenario():
        router, shards = await start_cluster(shard_count=2,
                                             upstream_codec="binary")
        try:
            report = await run_cluster_load(
                router.host, router.port,
                [coadd_job(10, seed=1), coadd_job(12, seed=2)],
                workers=4, sites=2, capacity_files=400, batch=4,
                codec="binary")
            assert report["codec"] == "binary"
            assert report["tasks_done"] == 22
            assert all(job["status"]["done"] for job in report["jobs"])
            for summary in report["workers"]:
                assert summary["codec"] == protocol.CODEC_BINARY
                assert summary["stop_reason"] == "job-done"
        finally:
            await stop_cluster(router, shards)

    run(scenario())


def test_cluster_worker_requires_a_job_scope():
    try:
        ClusterWorkerClient("127.0.0.1", 1, job_id=None)
    except ValueError as exc:
        assert "job_id" in str(exc)
    else:  # pragma: no cover - the guard must fire
        raise AssertionError("job-less cluster worker was accepted")


# -- the determinism pin -----------------------------------------------------

def decision_stream(service):
    """The schedule as the service's event ring recorded it."""
    return [(record["event"], record.get("task_id"),
             record.get("worker"), record.get("site"),
             record.get("lease_id"), record.get("job_id"))
            for record in service.events.tail()
            if record["event"] in ("submit", "assign", "complete")]


def test_single_shard_cluster_is_bit_identical_to_standalone():
    """One shard behind the router == ``repro serve``: same winners,
    same lease ids, same RNG state afterwards.  This is the guarantee
    that clustering is purely an availability feature."""
    from repro.obs.events import EventLog

    job = coadd_job(24, seed=5)

    async def standalone():
        service = SchedulerService(metric="combined", n=2, seed=13,
                                   wal_events=True)
        service.events = EventLog()
        server = SchedulerServer(service)
        await server.start()
        try:
            report = await run_load(server.host, server.port, job,
                                    workers=1, sites=1,
                                    capacity_files=400, drain=False)
            assert report["tasks_done"] == 24
        finally:
            await server.stop()
        return service

    async def clustered():
        router, shards = await start_cluster(shard_count=1, seed=13)
        service = shards[0][0]
        service.events = EventLog()
        try:
            report = await run_cluster_load(
                router.host, router.port, [job], workers=1, sites=1,
                capacity_files=400, drain=False)
            assert report["tasks_done"] == 24
            assert report["reconnects"] == 0
        finally:
            await stop_cluster(router, shards)
        return service

    standalone_service = run(standalone())
    clustered_service = run(clustered())
    assert decision_stream(clustered_service) \
        == decision_stream(standalone_service)
    assert clustered_service.export_state() \
        == standalone_service.export_state()
    assert (clustered_service.engine.rng.getstate()
            == standalone_service.engine.rng.getstate())
