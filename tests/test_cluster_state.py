"""Durable shard state: snapshots, WAL replay, crash recovery.

Covers the ``repro.cluster`` durability layer below the wire: the
versioned+checksummed snapshot files, ``export_state`` /
``import_state`` round-trips, WAL tail-replay through
``replay_record``, and the full ``open_shard`` recovery dance
(snapshot + tail, never a cold start) including the exactly-once
guarantees it must preserve.
"""

import json
import os

import pytest

from repro.cluster.shard import (open_shard, recover_service, wal_files,
                                 wal_path)
from repro.cluster.snapshot import (SnapshotError, list_snapshots,
                                    load_latest_snapshot, load_snapshot,
                                    snapshot_path, write_snapshot)
from repro.obs.events import EventLog, iter_events
from repro.serve.service import SchedulerService


class FakeClock:
    """Manually-advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def pull(service, worker="w0", site=0, job_id=None):
    box = []
    service.request_task(worker, site, box.append, job_id=job_id)
    return box[0] if box else "parked"


def submit(service, specs, job_id=None):
    return service.submit_job(
        [{"files": files, "flops": flops} for files, flops in specs],
        job_id=job_id)


SPECS = [([1, 2, 3], 1.0), ([3, 4], 2.0), ([5], 0.5), ([1, 5, 6], 3.0)]


# -- snapshot files ----------------------------------------------------------

def test_snapshot_round_trip_and_naming(tmp_path):
    state_dir = str(tmp_path)
    payload = {"version": 1, "tasks": [[0, [1, 2], 1.0]],
               "nested": {"rng": [3, [1, 2, 3], None]}}
    path = write_snapshot(state_dir, payload, wal_seq=42)
    assert path == snapshot_path(state_dir, 42)
    assert os.path.basename(path) == "snapshot-000000000042.json"
    assert load_snapshot(path) == (42, payload)
    assert load_latest_snapshot(state_dir) == (42, payload)


def test_snapshots_prune_to_keep_newest(tmp_path):
    state_dir = str(tmp_path)
    for seq in range(5):
        write_snapshot(state_dir, {"seq": seq}, wal_seq=seq, keep=3)
    assert [seq for seq, _path in list_snapshots(state_dir)] == [2, 3, 4]
    assert load_latest_snapshot(state_dir) == (4, {"seq": 4})


def test_corrupt_snapshot_falls_back_to_older(tmp_path):
    state_dir = str(tmp_path)
    write_snapshot(state_dir, {"good": "old"}, wal_seq=10)
    newest = write_snapshot(state_dir, {"good": "new"}, wal_seq=20)
    # Bit-rot the newest payload without touching its checksum.
    wrapper = json.loads(open(newest, encoding="utf-8").read())
    wrapper["payload"]["good"] = "tampered"
    with open(newest, "w", encoding="utf-8") as handle:
        json.dump(wrapper, handle)
    with pytest.raises(SnapshotError):
        load_snapshot(newest)
    # The loader skips the bad one: replay gets longer, never wrong.
    assert load_latest_snapshot(state_dir) == (10, {"good": "old"})


def test_torn_and_wrong_version_snapshots_are_unusable(tmp_path):
    state_dir = str(tmp_path)
    path = write_snapshot(state_dir, {"a": 1}, wal_seq=7)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"version": 1, "wal_seq": 7, "chec')  # torn write
    assert load_latest_snapshot(state_dir) is None
    wrapper = {"version": 99, "wal_seq": 7, "checksum": "x",
               "payload": {}}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(wrapper, handle)
    with pytest.raises(SnapshotError):
        load_snapshot(path)
    assert load_latest_snapshot(state_dir) is None


def test_write_snapshot_rejects_bad_keep(tmp_path):
    with pytest.raises(ValueError):
        write_snapshot(str(tmp_path), {}, wal_seq=0, keep=0)


# -- export / import round-trip ----------------------------------------------

def make_pair(**kwargs):
    kwargs.setdefault("metric", "combined")
    kwargs.setdefault("n", 2)
    kwargs.setdefault("seed", 11)
    kwargs.setdefault("clock", FakeClock())
    return SchedulerService(**kwargs)


def test_export_import_round_trip_is_bit_identical(tmp_path):
    source = make_pair()
    submit(source, SPECS)
    first = pull(source, worker="w0", site=0)
    pull(source, worker="w1", site=1)  # left in-flight
    source.task_done("w0", first.task.task_id, first.lease_id)
    source.file_delta(0, added=[1, 2], removed=[], referenced=[3])
    exported = source.export_state()
    # JSON round-trip: state must survive the snapshot encoding.
    exported = json.loads(json.dumps(exported))

    restored = make_pair()
    restored.import_state(exported)
    assert restored.export_state() == source.export_state()
    # Same RNG stream, same heaps: the next decision matches exactly.
    source_next = pull(source, worker="w2", site=0)
    restored_next = pull(restored, worker="w2", site=0)
    assert restored_next.task.task_id == source_next.task.task_id
    assert restored_next.lease_id == source_next.lease_id
    assert (restored.engine.rng.getstate()
            == source.engine.rng.getstate())


def test_import_refuses_mismatched_identity(tmp_path):
    source = make_pair()
    submit(source, SPECS[:1])
    state = source.export_state()
    from repro.serve.service import ServiceError
    with pytest.raises(ServiceError):
        make_pair(metric="rest").import_state(dict(state))
    with pytest.raises(ServiceError):
        make_pair(id_start=1, id_stride=2).import_state(dict(state))
    used = make_pair()
    submit(used, SPECS[:1])
    with pytest.raises(ServiceError):
        used.import_state(state)


def test_import_rearms_leases_with_fresh_ttl():
    clock = FakeClock()
    source = make_pair(clock=clock, lease_ttl=10.0)
    submit(source, SPECS)
    assignment = pull(source, worker="w0", site=0)
    clock.advance(9.0)  # one second left on the source lease

    restore_clock = FakeClock()
    restored = make_pair(clock=restore_clock, lease_ttl=10.0)
    restored.import_state(source.export_state())
    restore_clock.advance(9.0)
    assert restored.expire_leases() == 0  # fresh TTL, not a stale one
    result = restored.task_done("w0", assignment.task.task_id,
                                assignment.lease_id)
    assert result.accepted  # original lease id still wins


# -- WAL replay --------------------------------------------------------------

def run_wal_workload(state_dir, clock):
    """A small life: submit, assigns, one completion, one expiry."""
    events = EventLog(path=wal_path(state_dir), auto_flush=True)
    service = SchedulerService(metric="combined", n=2, seed=11,
                               clock=clock, lease_ttl=5.0,
                               events=events, wal_events=True)
    submit(service, SPECS)
    first = pull(service, worker="w0", site=0)
    service.task_done("w0", first.task.task_id, first.lease_id)
    second = pull(service, worker="w1", site=1)
    clock.advance(6.0)
    assert service.expire_leases() == 1  # w1's lease lapses, requeues
    third = pull(service, worker="w2", site=0)
    service.file_delta(1, added=[3, 4], removed=[], referenced=[5])
    return service, events, {"expired": second, "held": third}


def functional_state(service):
    """Export minus the decision-stream fields.

    Replay folds recorded *outcomes* without re-running ``choose``, so
    the RNG stream and decision counters legitimately differ from the
    live service that made those decisions; everything else must not.
    """
    state = service.export_state()
    for key in ("rng", "decisions", "tasks_scored"):
        state.pop(key)
    return state


def test_wal_replay_rebuilds_the_functional_state(tmp_path):
    state_dir = str(tmp_path)
    service, events, _held = run_wal_workload(state_dir, FakeClock())
    events.close()

    replayed = SchedulerService(metric="combined", n=2, seed=11,
                                clock=FakeClock(), lease_ttl=5.0,
                                wal_events=True)
    applied = sum(1 for record in iter_events(wal_path(state_dir))
                  if replayed.replay_record(record))
    assert applied > 0
    assert functional_state(replayed) == functional_state(service)


def test_replay_is_idempotent_for_lifecycle_records(tmp_path):
    """Submit/assign/complete/expire/requeue records can be re-folded.

    ``delta`` records are excluded on the second pass: reference
    counts are genuine counters, so re-applying a delta legitimately
    re-counts them — recovery replays each record exactly once (the
    snapshot's ``wal_seq`` gates the tail), so only the lifecycle
    records need to shrug off a duplicate.
    """
    state_dir = str(tmp_path)
    service, events, _held = run_wal_workload(state_dir, FakeClock())
    events.close()
    replayed = SchedulerService(metric="combined", n=2, seed=11,
                                clock=FakeClock(), lease_ttl=5.0,
                                wal_events=True)
    records = list(iter_events(wal_path(state_dir)))
    for record in records:
        replayed.replay_record(record)
    once = functional_state(replayed)
    for record in records:
        if record["event"] != "delta":
            replayed.replay_record(record)
    assert functional_state(replayed) == once


def test_replay_rejects_non_wal_submit_records(tmp_path):
    path = str(tmp_path / "thin.jsonl")
    with EventLog(path=path) as events:
        service = SchedulerService(metric="combined", n=2, seed=0,
                                   clock=FakeClock(), events=events)
        submit(service, SPECS[:1])  # wal_events=False: no specs logged
    replayed = SchedulerService(metric="combined", n=2, seed=0,
                                clock=FakeClock(), wal_events=True)
    from repro.serve.service import ServiceError
    with pytest.raises(ServiceError, match="WAL mode"):
        for record in iter_events(path):
            replayed.replay_record(record)


# -- open_shard: snapshot + tail-replay recovery -----------------------------

def test_open_shard_recovers_from_snapshot_plus_tail(tmp_path):
    state_dir = str(tmp_path)
    first = open_shard(state_dir, metric="combined", n=2, seed=3,
                       lease_ttl=5.0, clock=FakeClock())
    service = first.service
    submit(service, SPECS)
    done = pull(service, worker="w0", site=0)
    service.task_done("w0", done.task.task_id, done.lease_id)
    assert first.maybe_snapshot() is not None
    snapshot_seq = first.events.next_seq
    # Post-snapshot tail: one more completion and one in-flight lease.
    tail_done = pull(service, worker="w0", site=0)
    service.task_done("w0", tail_done.task.task_id, tail_done.lease_id)
    held = pull(service, worker="w1", site=1)
    pre_crash = functional_state(service)
    # Crash: no close(), no final snapshot — auto_flush already pushed
    # every WAL record out, which is exactly what kill -9 leaves.

    second = open_shard(state_dir, metric="combined", n=2, seed=3,
                        lease_ttl=5.0, clock=FakeClock())
    report = second.report
    assert report["snapshot_seq"] == snapshot_seq
    assert report["replayed"] > 0  # the tail, not a cold start
    assert report["skipped"] > 0   # pre-snapshot records were covered
    assert functional_state(second.service) == pre_crash
    # Exactly-once across the restart: done stays done, held stays
    # completable under its original lease, pending stays assignable.
    dup = second.service.task_done("w0", tail_done.task.task_id,
                                   tail_done.lease_id)
    assert (dup.accepted, dup.reason) == (False, "already-complete")
    resumed = second.service.task_done("w1", held.task.task_id,
                                       held.lease_id)
    assert resumed.accepted
    last = pull(second.service, worker="w2", site=0)
    result = second.service.task_done("w2", last.task.task_id,
                                      last.lease_id)
    assert result.accepted
    assert second.service.job_status(0)["done"]
    second.close()


def test_open_shard_without_snapshot_replays_full_log(tmp_path):
    state_dir = str(tmp_path)
    first = open_shard(state_dir, metric="combined", n=2, seed=3,
                       lease_ttl=5.0, clock=FakeClock())
    submit(first.service, SPECS)
    done = pull(first.service, worker="w0", site=0)
    first.service.task_done("w0", done.task.task_id, done.lease_id)
    pre_crash = functional_state(first.service)
    for _seq, path in list_snapshots(state_dir):
        os.remove(path)  # force the no-snapshot path

    second = open_shard(state_dir, metric="combined", n=2, seed=3,
                        lease_ttl=5.0, clock=FakeClock())
    assert second.report["snapshot_seq"] is None
    assert second.report["skipped"] == 0
    assert functional_state(second.service) == pre_crash
    second.close()


def test_open_shard_continues_the_wal_sequence(tmp_path):
    state_dir = str(tmp_path)
    first = open_shard(state_dir, clock=FakeClock())
    submit(first.service, SPECS[:2])
    next_seq = first.events.next_seq
    assert next_seq > 0
    # Crash; the second incarnation appends where the first stopped.
    second = open_shard(state_dir, clock=FakeClock())
    assert second.report["next_seq"] == next_seq
    assert second.events.next_seq == next_seq
    submit(second.service, SPECS[2:], job_id=0)
    seqs = [record["seq"] for path in wal_files(state_dir)
            for record in iter_events(path)]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)  # one monotone history
    second.close()


def test_maybe_snapshot_skips_when_nothing_changed(tmp_path):
    shard = open_shard(str(tmp_path), clock=FakeClock())
    submit(shard.service, SPECS[:1])
    assert shard.maybe_snapshot() is not None
    assert shard.maybe_snapshot() is None  # same wal seq: skipped
    assert shard.maybe_snapshot(force=True) is not None
    assert shard.snapshots_written == 2
    shard.close()


def test_shard_describe_reports_identity_and_recovery(tmp_path):
    shard = open_shard(str(tmp_path), shard_index=1, shard_count=3,
                       clock=FakeClock())
    submit(shard.service, SPECS[:1])
    shard.maybe_snapshot()
    block = shard.describe()
    assert (block["index"], block["count"]) == (1, 3)
    assert block["snapshots_on_disk"] == 1
    assert block["recovery"]["snapshot_seq"] is None
    assert block["wal_next_seq"] == shard.events.next_seq
    # Shard ids stride so job/task ids are congruent to the index.
    assert shard.service.submit_job(
        [{"files": [9]}])["job_id"] % 3 == 1
    shard.close()
