"""Shard-to-shard work stealing: durability, exactly-once, identity.

Four groups:

* **victim crashes** — kill -9 (abandon without ``close()``, exactly
  what the WAL's ``auto_flush`` leaves behind) between ``STEAL_GRANT``
  and ``STEAL_ACK`` requeues the export locally and refuses the
  thief's late ack; the same crash *after* the ack preserves the
  export, and the forwarded completions land exactly once;
* **thief crashes** — a tentative import survives recovery and
  resolves through the same commit/abort answers a live exchange uses;
* **bit-identity** — a stealing-enabled service that is never asked
  exports byte-identical state (and RNG stream) to a stealing-off
  service, and the supervisor refuses to arm stealing on a one-shard
  cluster;
* **live e2e** — two real servers over TCP, a
  :class:`~repro.cluster.steal.StealManager` on the idle shard, and a
  clean exactly-once audit with every completion forwarded home.
"""

import asyncio

from repro.cluster.shard import open_shard
from repro.cluster.steal import StealManager
from repro.cluster.supervisor import ClusterSupervisor
from repro.serve.client import SchedulerClient, WorkerClient
from repro.serve.server import SchedulerServer
from repro.serve.service import SchedulerService

TIMEOUT = 60


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=TIMEOUT))


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def pull(service, worker="w0", site=0, job_id=None):
    box = []
    service.request_task(worker, site, box.append, job_id=job_id)
    return box[0] if box else "parked"


def submit(service, specs, job_id=None):
    return service.submit_job(
        [{"files": files, "flops": flops} for files, flops in specs],
        job_id=job_id)


SPECS = [([1, 2, 3], 1.0), ([3, 4], 2.0), ([5], 0.5), ([1, 5, 6], 3.0)]


def open_victim(state_dir, **kwargs):
    kwargs.setdefault("clock", FakeClock())
    return open_shard(state_dir, metric="combined", n=2, seed=3,
                      shard_index=0, shard_count=2,
                      steal_watermark=1, **kwargs)


# -- victim crashes ----------------------------------------------------------

def test_victim_crash_before_ack_requeues_export(tmp_path):
    """kill -9 between STEAL_GRANT and STEAL_ACK: the un-acked export
    may or may not have reached the thief, but the thief cannot have
    activated it, so recovery reclaims the tasks locally and the late
    re-ack is refused — nothing runs twice, nothing is lost."""
    state_dir = str(tmp_path)
    first = open_victim(state_dir)
    submit(first.service, SPECS)
    grant = first.service.export_steal_batch("steal/1", 2, [])
    assert grant is not None and len(grant["tasks"]) == 2
    assert first.service.queue_depth == 2
    # Crash: no ack, no close() — auto_flush already persisted the
    # steal-export record, exactly what kill -9 leaves behind.

    second = open_victim(state_dir)
    assert second.report["steal_requeued"] == 2
    assert second.service.queue_depth == 4
    assert second.service.exported_outstanding == 0
    # The thief's tentative import re-acks, finds the export gone,
    # and must be told to drop it.
    assert second.service.steal_export_acked(grant["export_id"]) \
        is False
    # Exactly-once audit: every task completes locally, once.
    for _ in range(4):
        assignment = pull(second.service, worker="w9", site=0)
        result = second.service.task_done(
            "w9", assignment.task.task_id, assignment.lease_id)
        assert result.accepted
    assert second.service.job_status(0)["done"]
    assert second.service.stats.completions == 4
    assert second.service.stats.duplicate_completions == 0
    second.close()


def test_victim_crash_after_ack_preserves_export(tmp_path):
    """kill -9 after STEAL_ACK: the thief was told to keep the batch,
    so recovery must NOT requeue it — the tasks stay exported and the
    forwarded completions land exactly once (re-forwards are counted
    as duplicates and change nothing)."""
    state_dir = str(tmp_path)
    first = open_victim(state_dir)
    submit(first.service, SPECS)
    grant = first.service.export_steal_batch("steal/1", 2, [])
    stolen_ids = [spec["task_id"] for spec in grant["tasks"]]
    assert first.service.steal_export_acked(grant["export_id"])
    # Crash after the durable ack.

    second = open_victim(state_dir)
    assert second.report["steal_requeued"] == 0
    assert second.service.exported_outstanding == 2
    assert second.service.queue_depth == 2
    # An exported task is never handed to a local worker.
    local_ids = set()
    for _ in range(2):
        assignment = pull(second.service, worker="w9", site=0)
        local_ids.add(assignment.task.task_id)
        second.service.task_done("w9", assignment.task.task_id,
                                 assignment.lease_id)
    assert local_ids.isdisjoint(stolen_ids)
    # The thief forwards the stolen completions home — once, then
    # again after its own crash; the second landing is a no-op.
    landed = second.service.steal_done(stolen_ids, "steal/1")
    assert landed == {"completed": 2, "duplicates": 0}
    replay = second.service.steal_done(stolen_ids, "steal/1")
    assert replay == {"completed": 0, "duplicates": 2}
    assert second.service.job_status(0)["done"]
    assert second.service.stats.completions == 4
    assert second.service.exported_outstanding == 0
    second.close()


# -- thief crashes -----------------------------------------------------------

def test_thief_crash_with_tentative_import_resolves_on_recovery(
        tmp_path):
    """A tentative import survives kill -9 un-activated; recovery
    re-acks it through the exact live-exchange answers: commit
    activates the foreign tasks (completions forward home), abort
    drops the batch without a trace."""
    state_dir = str(tmp_path)
    specs = [{"task_id": 0, "job_id": 0, "files": [1, 2],
              "flops": 1.0},
             {"task_id": 2, "job_id": 0, "files": [5], "flops": 0.5}]
    first = open_shard(state_dir, metric="combined", n=2, seed=3,
                       shard_index=1, shard_count=2,
                       steal_watermark=1, clock=FakeClock())
    first.service.steal_import_tentative(0, 7, specs)
    first.service.steal_import_tentative(0, 8, specs)  # to be aborted
    assert first.service.queue_depth == 0  # tentative = invisible
    # Crash before either answer arrived.

    second = open_shard(state_dir, metric="combined", n=2, seed=3,
                        shard_index=1, shard_count=2,
                        steal_watermark=1, clock=FakeClock())
    assert second.service.pending_steal_imports() == [(0, 7), (0, 8)]
    # The victim aborted export 8 (its recovery requeued the tasks).
    second.service.steal_abort_import(0, 8)
    assert second.service.steal_commit_import(0, 7) == 2
    assert second.service.pending_steal_imports() == []
    assert second.service.queue_depth == 2
    # Foreign completions queue for forwarding, never count locally.
    for _ in range(2):
        assignment = pull(second.service, worker="tw", site=0)
        second.service.task_done("tw", assignment.task.task_id,
                                 assignment.lease_id)
    assert second.service.stats.completions == 0
    outbox = second.service.take_steal_completions()
    assert sorted(outbox) == [0] and sorted(outbox[0]) == [0, 2]
    second.service.steal_forwarded(0, [0, 2])
    assert second.service.steal_outbox_depth == 0
    second.close()


# -- bit-identity ------------------------------------------------------------

def test_stealing_enabled_but_never_asked_is_bit_identical():
    """The pinned regression: arming stealing must not perturb a shard
    nobody steals from — same decision stream, same RNG, and an
    export_state() with no ``steal`` key at all."""
    def workload(steal_watermark):
        service = SchedulerService(metric="combined", n=2, seed=11,
                                   clock=FakeClock(),
                                   steal_watermark=steal_watermark)
        submit(service, SPECS)
        first = pull(service, worker="w0", site=0)
        pull(service, worker="w1", site=1)
        service.task_done("w0", first.task.task_id, first.lease_id)
        service.file_delta(0, added=[1, 2], removed=[], referenced=[3])
        pull(service, worker="w2", site=0)
        return service

    off = workload(None)
    on = workload(4)
    assert on.export_state() == off.export_state()
    assert "steal" not in on.export_state()
    assert on.engine.rng.getstate() == off.engine.rng.getstate()


def test_supervisor_arms_stealing_only_with_peers(tmp_path):
    """One shard has nobody to steal from: the flag must not reach the
    shard command line (which would change idle-pull behavior)."""
    solo = ClusterSupervisor(shards=1, state_root=str(tmp_path),
                             steal_watermark=4)
    assert "--steal-watermark" not in solo._shard_command(0)
    duo = ClusterSupervisor(shards=2, state_root=str(tmp_path),
                            steal_watermark=4)
    command = duo._shard_command(0)
    assert "--steal-watermark" in command
    assert "--cluster-file" in command


# -- live e2e ----------------------------------------------------------------

def test_e2e_steal_feeds_idle_shard_and_forwards_completions():
    """Two real servers over TCP: the loaded victim's job is finished
    by both fleets, every stolen completion is forwarded home, and
    the audit is clean (victim counts all 8, thief counts none)."""
    async def body():
        victim = SchedulerService(metric="combined", n=2, seed=0,
                                  id_start=0, id_stride=2,
                                  steal_watermark=2, name="shard-0")
        thief = SchedulerService(metric="combined", n=2, seed=0,
                                 id_start=1, id_stride=2,
                                 steal_watermark=2, name="shard-1")
        victim_server = SchedulerServer(victim)
        thief_server = SchedulerServer(thief)
        await victim_server.start()
        await thief_server.start()
        manager = StealManager(
            thief, 1, peers={0: (victim_server.host,
                                 victim_server.port)},
            interval=0.01)
        await manager.start()
        try:
            async with SchedulerClient(victim_server.host,
                                       victim_server.port) as control:
                handle = await control.submit(
                    [{"files": [fid, fid + 100], "flops": 1.0}
                     for fid in range(8)])
                # Unscoped thief-side worker: parks, then runs
                # whatever stealing feeds it.
                thief_worker = WorkerClient(thief_server.host,
                                            thief_server.port,
                                            worker="tw", site=0)
                thief_task = asyncio.create_task(thief_worker.run())
                # Slow victim-side worker keeps the queue deep enough
                # to steal from while draining the local remainder.
                victim_worker = WorkerClient(victim_server.host,
                                             victim_server.port,
                                             worker="vw", site=0,
                                             flops_per_sec=50.0,
                                             job_id=handle.job_id)
                victim_summary = await victim_worker.run()
                status = await asyncio.wait_for(handle.wait_done(),
                                                timeout=20)
                victim_stats = await control.stats()
            async with SchedulerClient(thief_server.host,
                                       thief_server.port) as tcontrol:
                thief_stats = await tcontrol.stats()
                await tcontrol.drain()
            thief_summary = await asyncio.wait_for(thief_task,
                                                   timeout=10)
            stolen = thief_stats["steal"]["tasks_stolen"]
            assert status["done"] and status["completed"] == 8
            assert stolen >= 1
            assert victim_stats["steal"]["tasks_exported"] == stolen
            # Forwarded completions count at the owner, never the
            # thief; the two fleets together ran exactly the job.
            assert victim_stats["completions"] == 8
            assert victim_stats["duplicate_completions"] == 0
            assert thief_stats["completions"] == 0
            assert thief_summary["tasks_done"] == stolen
            assert victim_summary["tasks_done"] == 8 - stolen
            assert thief.steal_outbox_depth == 0
            assert victim.exported_outstanding == 0
        finally:
            await manager.stop()
            await thief_server.stop()
            await victim_server.stop()

    run(body())
