"""White-box tests of scheduler internals: storage affinity's initial
distribution, XSufferage's estimators, worker-centric candidate heaps."""


import pytest

from repro.core.storage_affinity import StorageAffinityScheduler
from repro.core.worker_centric import WorkerCentricScheduler
from repro.core.xsufferage import XSufferageScheduler

from conftest import make_grid, make_job


# -- storage affinity internals ---------------------------------------------

def test_initial_distribution_deterministic(env):
    job = make_job([{i, i + 1, i + 2} for i in range(20)])

    def distribute():
        from repro.sim import Environment
        env_i = Environment()
        grid = make_grid(env_i, job, num_sites=3)
        scheduler = StorageAffinityScheduler(job)
        grid.attach_scheduler(scheduler)
        return [sorted(t.task_id for t in queue)
                for queue in scheduler._queues.values()]

    assert distribute() == distribute()


def test_initial_distribution_covers_all_tasks(env):
    job = make_job([{i, i + 1} for i in range(15)])
    grid = make_grid(env, job, num_sites=3, workers_per_site=2)
    scheduler = StorageAffinityScheduler(job)
    grid.attach_scheduler(scheduler)
    queued = sorted(task.task_id for queue in scheduler._queues.values()
                    for task in queue)
    assert queued == list(range(15))


def test_virtual_view_groups_neighbours(env):
    """Consecutive overlapping tasks should mostly share a site."""
    job = make_job([{i, i + 1, i + 2, i + 3} for i in range(24)])
    grid = make_grid(env, job, num_sites=3, capacity_files=200)
    scheduler = StorageAffinityScheduler(job, balance_factor=2.0)
    grid.attach_scheduler(scheduler)
    site_of = {}
    for worker_name, queue in scheduler._queues.items():
        site_index = int(worker_name[1:].split(".")[0])
        for task in queue:
            site_of[task.task_id] = site_index
    same_site_neighbours = sum(
        1 for i in range(23) if site_of[i] == site_of[i + 1])
    assert same_site_neighbours >= 12, \
        "affinity should keep most neighbours together"


def test_balance_cap_one_means_even_split(env):
    job = make_job([{i} for i in range(12)])
    grid = make_grid(env, job, num_sites=3)
    scheduler = StorageAffinityScheduler(job, balance_factor=1.0)
    grid.attach_scheduler(scheduler)
    assert max(scheduler.initial_site_load) <= 4


# -- xsufferage estimators ------------------------------------------------

def test_site_mct_counts_missing_bytes(env):
    job = make_job([{0, 1, 2, 3}], file_size=1000.0, flops=0.0)
    grid = make_grid(env, job, num_sites=2)
    scheduler = XSufferageScheduler(job)
    grid.attach_scheduler(scheduler)
    task = job[0]
    cold = scheduler._site_mct(task, 0)
    # warm the site: two of four files resident
    grid.sites[0].storage.insert(0)
    grid.sites[0].storage.insert(1)
    warm = scheduler._site_mct(task, 0)
    assert warm == pytest.approx(cold / 2, rel=1e-6)


def test_site_mct_includes_backlog(env):
    job = make_job([{0}, {1}], flops=0.0)
    grid = make_grid(env, job, num_sites=2)
    scheduler = XSufferageScheduler(job)
    grid.attach_scheduler(scheduler)
    task = job[0]
    base = scheduler._site_mct(task, 0)
    scheduler._site_backlog[0] += 100.0
    assert scheduler._site_mct(task, 0) == pytest.approx(base + 100.0)


def test_backlog_never_negative(env):
    job = make_job([{0}])
    grid = make_grid(env, job, num_sites=1)
    scheduler = XSufferageScheduler(job)
    grid.attach_scheduler(scheduler)
    grid.run()
    assert all(backlog >= 0.0 for backlog in scheduler._site_backlog)


# -- worker-centric candidate heaps ------------------------------------------

def test_zero_heap_prunes_assigned_tasks(env):
    job = make_job([{i} for i in range(6)])
    grid = make_grid(env, job, num_sites=1)
    scheduler = WorkerCentricScheduler(job, metric="rest")
    grid.attach_scheduler(scheduler)
    grid.run()
    # all tasks assigned; the heap must be fully prunable
    assert scheduler._zero_overlap_candidates(0) == []


def test_zero_candidates_ordering_min_files(env):
    job = make_job([{0, 1, 2}, {3}, {4, 5}])
    grid = make_grid(env, job, num_sites=1)
    scheduler = WorkerCentricScheduler(job, metric="rest", n=3)
    grid.attach_scheduler(scheduler)
    candidates = scheduler._zero_overlap_candidates(0)
    sizes = [job[tid].num_files for tid in candidates]
    assert sizes == sorted(sizes)
    assert candidates[0] == 1  # the single-file task


def test_zero_candidates_fifo_for_overlap_metric(env):
    job = make_job([{0, 1, 2}, {3}, {4, 5}])
    grid = make_grid(env, job, num_sites=1)
    scheduler = WorkerCentricScheduler(job, metric="overlap", n=2)
    grid.attach_scheduler(scheduler)
    assert scheduler._zero_overlap_candidates(0) == [0, 1]
