"""CalculateWeight metrics: formulas and orderings."""

import pytest

from repro.core.metrics import (METRICS, ZERO_OVERLAP_ORDER, TaskView,
                                combined_literal_metric, combined_metric,
                                overlap_metric, rest_metric, rest_weight)


def view(num_files=10, overlap=0, refsum=0.0, total_refsum=0.0,
         total_rest=1.0, task_id=0):
    return TaskView(task_id=task_id, num_files=num_files, overlap=overlap,
                    refsum=refsum, total_refsum=total_refsum,
                    total_rest=total_rest)


def test_rest_weight_basic():
    assert rest_weight(4) == pytest.approx(0.25)
    assert rest_weight(1) == pytest.approx(1.0)


def test_rest_weight_zero_missing_is_capped():
    assert rest_weight(0) == pytest.approx(2.0)


def test_rest_weight_negative_rejected():
    with pytest.raises(ValueError):
        rest_weight(-1)


def test_overlap_metric_counts_overlap():
    assert overlap_metric(view(overlap=7)) == 7.0
    assert overlap_metric(view(overlap=0)) == 0.0


def test_rest_metric_inverse_missing():
    assert rest_metric(view(num_files=10, overlap=6)) == pytest.approx(0.25)


def test_rest_metric_prefers_fewer_missing():
    nearly_done = rest_metric(view(num_files=10, overlap=9))
    far = rest_metric(view(num_files=10, overlap=2))
    assert nearly_done > far


def test_rest_metric_fully_resident_beats_everything():
    full = rest_metric(view(num_files=10, overlap=10))
    one_missing = rest_metric(view(num_files=10, overlap=9))
    assert full > one_missing


def test_combined_metric_sums_normalized_terms():
    v = view(num_files=10, overlap=5, refsum=20.0, total_refsum=100.0,
             total_rest=4.0)
    expected = 20.0 / 100.0 + (1.0 / 5) / 4.0
    assert combined_metric(v) == pytest.approx(expected)


def test_combined_metric_zero_total_ref():
    v = view(num_files=10, overlap=5, refsum=0.0, total_refsum=0.0,
             total_rest=4.0)
    assert combined_metric(v) == pytest.approx((1.0 / 5) / 4.0)


def test_combined_metric_zero_total_rest_guard():
    v = view(total_rest=0.0, total_refsum=0.0)
    assert combined_metric(v) == 0.0


def test_combined_literal_grows_with_missing():
    """The printed formula prefers MORE missing files (the anomaly)."""
    few_missing = combined_literal_metric(view(num_files=10, overlap=9,
                                               total_rest=4.0))
    many_missing = combined_literal_metric(view(num_files=10, overlap=1,
                                                total_rest=4.0))
    assert many_missing > few_missing


def test_combined_intent_shrinks_with_missing():
    few_missing = combined_metric(view(num_files=10, overlap=9,
                                       total_rest=4.0))
    many_missing = combined_metric(view(num_files=10, overlap=1,
                                        total_rest=4.0))
    assert few_missing > many_missing


def test_registry_contains_all_metrics():
    assert set(METRICS) == {"overlap", "rest", "combined",
                            "combined-literal"}
    assert set(ZERO_OVERLAP_ORDER) == set(METRICS)


def test_missing_property():
    assert view(num_files=10, overlap=4).missing == 6


def test_taskview_rest_property():
    assert view(num_files=10, overlap=8).rest == pytest.approx(0.5)
