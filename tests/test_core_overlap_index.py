"""OverlapIndex: incremental bookkeeping equals naive recomputation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.overlap_index import OverlapIndex
from repro.grid.storage import SiteStorage

from conftest import make_job


@pytest.fixture
def indexed(tiny_job):
    index = OverlapIndex(tiny_job)
    storage = SiteStorage(10)
    index.watch_site(0, storage)
    return index, storage


def test_initially_no_overlaps(indexed):
    index, _storage = indexed
    assert index.nonzero_overlaps(0) == {}
    assert index.total_refsum(0) == 0.0


def test_insert_updates_overlaps(indexed, tiny_job):
    index, storage = indexed
    storage.insert(2)  # file 2 is in tasks 0, 1, 2
    assert index.nonzero_overlaps(0) == {0: 1, 1: 1, 2: 1}


def test_evict_reverses_insert(indexed):
    index, storage = indexed
    storage.insert(2)
    storage.insert(99)  # unknown to any task: no effect on index
    # force eviction of 2 by filling a small storage? use direct evict:
    storage.insert(3)
    before = dict(index.nonzero_overlaps(0))
    assert before == {0: 1, 1: 2, 2: 2, 3: 1}


def test_total_rest_matches_naive(indexed, tiny_job):
    index, storage = indexed
    for fid in (0, 2, 4):
        storage.insert(fid)
    assert index.total_rest(0) == pytest.approx(index.naive_total_rest(0))


def test_overlap_matches_naive_after_operations(indexed, tiny_job):
    index, storage = indexed
    for fid in (1, 2, 3):
        storage.insert(fid)
    for task in tiny_job:
        assert index.nonzero_overlaps(0).get(task.task_id, 0) \
            == index.naive_overlap(0, task)


def test_refsum_tracks_touches(indexed, tiny_job):
    index, storage = indexed
    storage.insert(2)
    storage.touch(2)
    storage.touch(2)
    # tasks 0,1,2 contain file 2; its r_i is now 2
    state = index._sites[0]
    for tid in (0, 1, 2):
        assert state.refsum[tid] == pytest.approx(2.0)
    assert index.total_refsum(0) == pytest.approx(6.0)
    for task in tiny_job:
        assert state.refsum.get(task.task_id, 0.0) \
            == pytest.approx(index.naive_refsum(0, task))


def test_refsum_on_reinsert_carries_history(indexed, tiny_job):
    index, storage = indexed
    storage.insert(2)
    storage.touch(2)       # r=1
    # evict by inserting beyond capacity
    small = SiteStorage(1)
    index2 = OverlapIndex(make_job([{0, 1}]))
    index2.watch_site(0, small)
    small.insert(0)
    small.touch(0)
    small.insert(1)        # evicts 0 (r_0 = 1 survives)
    assert index2.nonzero_overlaps(0) == {0: 1}
    small.insert(0)        # evicts 1, reinserts 0 with r=1
    state = index2._sites[0]
    assert state.refsum[0] == pytest.approx(1.0)
    assert index2.naive_refsum(0, index2.job[0]) == pytest.approx(1.0)


def test_remove_task_clears_entries(indexed, tiny_job):
    index, storage = indexed
    storage.insert(2)
    index.remove_task(tiny_job[1])
    assert 1 not in index.nonzero_overlaps(0)
    assert 1 not in index.pending_tasks
    with pytest.raises(KeyError):
        index.remove_task(tiny_job[1])


def test_add_task_after_storage_warm(indexed, tiny_job):
    index, storage = indexed
    storage.insert(3)
    storage.touch(3)
    index.remove_task(tiny_job[1])
    index.add_task(tiny_job[1])
    assert index.nonzero_overlaps(0)[1] == 1
    assert index._sites[0].refsum[1] == pytest.approx(1.0)


def test_add_duplicate_task_rejected(indexed, tiny_job):
    index, _storage = indexed
    with pytest.raises(ValueError):
        index.add_task(tiny_job[0])


def test_watch_site_twice_rejected(indexed):
    index, _storage = indexed
    with pytest.raises(ValueError):
        index.watch_site(0, SiteStorage(5))


def test_watch_prewarmed_storage(tiny_job):
    storage = SiteStorage(10)
    storage.insert(2)
    storage.touch(2)
    index = OverlapIndex(tiny_job)
    index.watch_site(0, storage)
    assert index.nonzero_overlaps(0) == {0: 1, 1: 1, 2: 1}
    assert index.total_refsum(0) == pytest.approx(3.0)


def test_view_is_consistent(indexed, tiny_job):
    index, storage = indexed
    storage.insert(3)
    view = index.view(0, tiny_job[1])
    assert view.overlap == 1
    assert view.num_files == 3
    assert view.total_rest == pytest.approx(index.naive_total_rest(0))


# -- property-based equivalence -------------------------------------------

@st.composite
def job_and_ops(draw):
    num_files = draw(st.integers(min_value=3, max_value=12))
    num_tasks = draw(st.integers(min_value=1, max_value=6))
    task_files = [
        draw(st.sets(st.integers(0, num_files - 1), min_size=1,
                     max_size=num_files))
        for _ in range(num_tasks)
    ]
    ops = draw(st.lists(
        st.one_of(
            st.tuples(st.just("insert"), st.integers(0, num_files - 1)),
            st.tuples(st.just("touch"), st.integers(0, num_files - 1)),
            st.tuples(st.just("remove_task"), st.integers(0, num_tasks - 1)),
        ),
        max_size=30))
    capacity = draw(st.integers(min_value=1, max_value=num_files))
    return task_files, ops, capacity


@given(job_and_ops())
@settings(max_examples=120, deadline=None)
def test_index_always_matches_naive(data):
    task_files, ops, capacity = data
    job = make_job(task_files)
    index = OverlapIndex(job)
    storage = SiteStorage(capacity)
    index.watch_site(0, storage)
    removed = set()
    for op, arg in ops:
        if op == "insert":
            storage.insert(arg)
        elif op == "touch":
            storage.touch(arg)
        elif op == "remove_task" and arg < len(job.tasks) \
                and arg not in removed:
            index.remove_task(job[arg])
            removed.add(arg)
    state = index._sites[0]
    for task in job:
        if task.task_id in removed:
            assert task.task_id not in state.overlap
            continue
        naive_ov = index.naive_overlap(0, task)
        assert state.overlap.get(task.task_id, 0) == naive_ov
        assert state.refsum.get(task.task_id, 0.0) == pytest.approx(
            index.naive_refsum(0, task))
    assert index.total_rest(0) == pytest.approx(index.naive_total_rest(0))
    assert index.total_refsum(0) == pytest.approx(
        sum(index.naive_refsum(0, job[tid])
            for tid in index.pending_tasks))
