"""The indexed scheduler must match the verbatim Figure-2 rescan.

Strongest correctness evidence in the suite: on random workloads and
every metric, the production WorkerCentricScheduler (incremental index,
candidate heaps) and the NaiveWorkerCentricScheduler (full O(T*I)
rescan per request) must produce *identical assignment sequences* and
identical makespans, including the randomized ChooseTask(2) variants
(both consume their RNG identically: one draw per multi-candidate
decision).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.trace import TaskAssigned, TraceBus
from repro.core.reference import NaiveWorkerCentricScheduler
from repro.core.worker_centric import WorkerCentricScheduler
from repro.sim import Environment

from conftest import make_grid, make_job


def run_once(scheduler_cls, job, metric, n, seed, num_sites=2,
             workers_per_site=1, capacity=30):
    env = Environment()
    trace = TraceBus()
    grid = make_grid(env, job, trace=trace, num_sites=num_sites,
                     workers_per_site=workers_per_site,
                     capacity_files=capacity)
    scheduler = scheduler_cls(job, metric=metric, n=n,
                              rng=random.Random(seed))
    grid.attach_scheduler(scheduler)
    result = grid.run()
    assignments = [(r.task_id, r.worker)
                   for r in trace.of_type(TaskAssigned)]
    return assignments, result.makespan, result.file_transfers


@st.composite
def workload_and_params(draw):
    num_files = draw(st.integers(4, 25))
    num_tasks = draw(st.integers(2, 12))
    task_files = [
        draw(st.sets(st.integers(0, num_files - 1), min_size=1,
                     max_size=min(6, num_files)))
        for _ in range(num_tasks)
    ]
    metric = draw(st.sampled_from(
        ["overlap", "rest", "combined", "combined-literal"]))
    n = draw(st.sampled_from([1, 2]))
    seed = draw(st.integers(0, 2**16))
    capacity = draw(st.integers(8, 40))
    return task_files, metric, n, seed, capacity


@given(workload_and_params())
@settings(max_examples=50, deadline=None)
def test_indexed_equals_naive(data):
    task_files, metric, n, seed, capacity = data
    job = make_job(task_files, flops=1e9)
    fast = run_once(WorkerCentricScheduler, job, metric, n, seed,
                    capacity=capacity)
    slow = run_once(NaiveWorkerCentricScheduler, job, metric, n, seed,
                    capacity=capacity)
    assert fast == slow


@pytest.mark.parametrize("metric", ["overlap", "rest", "combined",
                                    "combined-literal"])
@pytest.mark.parametrize("n", [1, 2])
def test_indexed_equals_naive_on_coadd(metric, n):
    """Same equivalence on a realistic (small Coadd) workload."""
    from repro.exp import ExperimentConfig
    from repro.exp.runner import build_job
    job = build_job(ExperimentConfig(num_tasks=50, capacity_files=500))
    fast = run_once(WorkerCentricScheduler, job, metric, n, seed=7,
                    num_sites=3, capacity=500)
    slow = run_once(NaiveWorkerCentricScheduler, job, metric, n, seed=7,
                    num_sites=3, capacity=500)
    assert fast == slow


@given(workload_and_params())
@settings(max_examples=40, deadline=None)
def test_policy_engine_replay_equals_simulator(data):
    """The sim-free PolicyEngine, fed only the storage-delta stream a
    live server would see, must reproduce the simulator's decision
    sequence exactly (metrics x n x seeds)."""
    from repro.serve.replay import (record_run, recorded_decisions,
                                    replay_decisions)
    task_files, metric, n, seed, capacity = data
    job = make_job(task_files, flops=1e9)
    events = record_run(job, metric=metric, n=n, seed=seed,
                        num_sites=2, capacity_files=capacity)
    assert recorded_decisions(events) == replay_decisions(
        job, events, metric=metric, n=n, seed=seed)


@pytest.mark.parametrize("metric", ["overlap", "rest", "combined",
                                    "combined-literal"])
@pytest.mark.parametrize("n", [1, 2])
def test_policy_engine_replay_on_coadd(metric, n):
    """Same replay equivalence on a realistic (small Coadd) workload."""
    from repro.exp import ExperimentConfig
    from repro.exp.runner import build_job
    from repro.serve.replay import (record_run, recorded_decisions,
                                    replay_decisions)
    job = build_job(ExperimentConfig(num_tasks=40, capacity_files=500))
    events = record_run(job, metric=metric, n=n, seed=11,
                        num_sites=3, capacity_files=500)
    decisions = recorded_decisions(events)
    assert len(decisions) == len(job)
    assert decisions == replay_decisions(job, events, metric=metric,
                                         n=n, seed=11)


def test_naive_validation(tiny_job):
    with pytest.raises(ValueError):
        NaiveWorkerCentricScheduler(tiny_job, metric="nope")
    with pytest.raises(ValueError):
        NaiveWorkerCentricScheduler(tiny_job, n=0)


def test_naive_supports_dynamic_release(env, tiny_job):
    grid = make_grid(env, tiny_job)
    scheduler = NaiveWorkerCentricScheduler(
        tiny_job, initial_task_ids={0, 1})
    grid.attach_scheduler(scheduler)
    from repro.grid.arrivals import ArrivalSchedule, JobArrivalProcess
    JobArrivalProcess(grid, ArrivalSchedule(((100.0, (2, 3)),)))
    grid.run()
    assert scheduler.tasks_remaining == 0
