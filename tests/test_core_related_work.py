"""Related-work baselines: XSufferage and Spatial Clustering."""

import random

import pytest

from repro.analysis.trace import TaskAssigned, TaskCompleted, TraceBus
from repro.core.spatial_clustering import (SpatialClusteringScheduler,
                                           cluster_tasks)
from repro.core.xsufferage import XSufferageScheduler

from conftest import make_grid, make_job


# -- clustering ------------------------------------------------------------

def test_cluster_tasks_partition(tiny_job):
    clusters = cluster_tasks(tiny_job, cluster_size=2)
    ids = sorted(t.task_id for cluster in clusters for t in cluster)
    assert ids == [0, 1, 2, 3]
    assert all(len(c) <= 2 for c in clusters)


def test_cluster_tasks_groups_by_overlap():
    group_a = [{0, 1, 2}, {1, 2, 3}]
    group_b = [{10, 11, 12}, {11, 12, 13}]
    job = make_job(group_a + group_b)
    clusters = cluster_tasks(job, cluster_size=2)
    as_sets = [frozenset(t.task_id for t in c) for c in clusters]
    assert frozenset({0, 1}) in as_sets
    assert frozenset({2, 3}) in as_sets


def test_cluster_tasks_min_share_blocks_weak_links():
    job = make_job([{0, 1, 2, 3}, {3, 10, 11, 12}])  # 25% share only
    clusters = cluster_tasks(job, cluster_size=5, min_share=0.5)
    assert len(clusters) == 2


def test_cluster_size_validation(tiny_job):
    with pytest.raises(ValueError):
        cluster_tasks(tiny_job, cluster_size=0)


def test_cluster_singletons():
    job = make_job([{0}, {1}, {2}])  # no overlap at all
    clusters = cluster_tasks(job, cluster_size=3)
    assert len(clusters) == 3


# -- spatial clustering scheduler -------------------------------------------

def test_spatial_clustering_completes(env, tiny_job):
    trace = TraceBus()
    grid = make_grid(env, tiny_job, trace=trace, num_sites=2)
    scheduler = SpatialClusteringScheduler(tiny_job)
    grid.attach_scheduler(scheduler)
    grid.run()
    assert scheduler.tasks_remaining == 0
    assert {r.task_id for r in trace.of_type(TaskCompleted)} \
        == {0, 1, 2, 3}


def test_spatial_clustering_pins_clusters_to_sites(env):
    group_a = [{0, 1, 2}, {1, 2, 3}, {2, 3, 4}]
    group_b = [{10, 11, 12}, {11, 12, 13}, {12, 13, 14}]
    job = make_job(group_a + group_b)
    trace = TraceBus()
    grid = make_grid(env, job, trace=trace, num_sites=2)
    scheduler = SpatialClusteringScheduler(job, cluster_size=3)
    grid.attach_scheduler(scheduler)
    grid.run()
    site_of = {}
    for record in trace.of_type(TaskAssigned):
        site_of.setdefault(record.task_id, record.site)
    # each group's tasks share one site (modulo stealing at the tail)
    assert len({site_of[i] for i in range(3)}) <= 2
    a_sites = [site_of[i] for i in range(3)]
    assert max(a_sites.count(s) for s in set(a_sites)) >= 2


def test_spatial_clustering_idle_stealing(env):
    """A site with the empty queue steals instead of idling forever."""
    job = make_job([{i, i + 1} for i in range(6)])
    grid = make_grid(env, job, num_sites=3, workers_per_site=1)
    scheduler = SpatialClusteringScheduler(job, cluster_size=6)
    grid.attach_scheduler(scheduler)
    grid.run()
    assert scheduler.tasks_remaining == 0
    completions = [w.tasks_completed for w in grid.workers]
    assert sum(completions) == 6
    assert sum(1 for c in completions if c > 0) >= 2, \
        "stealing must spread one big cluster over idle sites"


# -- xsufferage ---------------------------------------------------------------

def test_xsufferage_completes(env, tiny_job):
    trace = TraceBus()
    grid = make_grid(env, tiny_job, trace=trace, num_sites=2)
    scheduler = XSufferageScheduler(tiny_job)
    grid.attach_scheduler(scheduler)
    grid.run()
    assert scheduler.tasks_remaining == 0
    assert {r.task_id for r in trace.of_type(TaskCompleted)} \
        == {0, 1, 2, 3}


def test_xsufferage_each_task_once(env):
    job = make_job([{i, i + 1} for i in range(10)])
    trace = TraceBus()
    grid = make_grid(env, job, trace=trace, num_sites=3,
                     workers_per_site=2)
    grid.attach_scheduler(XSufferageScheduler(job))
    grid.run()
    ids = [r.task_id for r in trace.of_type(TaskCompleted)]
    assert sorted(ids) == list(range(10))


def test_xsufferage_prefers_site_with_data(env):
    """The second of two identical tasks should follow the data."""
    job = make_job([{0, 1, 2, 3}, {0, 1, 2, 3, 4}, {10, 11}])
    trace = TraceBus()
    grid = make_grid(env, job, trace=trace, num_sites=2)
    grid.attach_scheduler(XSufferageScheduler(job))
    grid.run()
    site_of = {r.task_id: r.site for r in trace.of_type(TaskAssigned)}
    assert site_of[0] == site_of[1], \
        "overlapping tasks should land on the same site"


def test_xsufferage_workers_all_terminate(env, tiny_job):
    grid = make_grid(env, tiny_job, num_sites=2, workers_per_site=3)
    grid.attach_scheduler(XSufferageScheduler(tiny_job))
    grid.run()
    assert all(not w.process.is_alive for w in grid.workers)


@pytest.mark.parametrize("policy", ["minmin", "maxmin", "xsufferage"])
def test_mct_policies_complete(env, policy):
    job = make_job([{i, i + 1} for i in range(8)])
    grid = make_grid(env, job, num_sites=2)
    scheduler = XSufferageScheduler(job, policy=policy)
    grid.attach_scheduler(scheduler)
    grid.run()
    assert scheduler.tasks_remaining == 0


def test_unknown_mct_policy_rejected(tiny_job):
    with pytest.raises(ValueError):
        XSufferageScheduler(tiny_job, policy="bogus")


def test_minmin_prefers_cheap_task_first(env):
    """MinMin dispatches the smallest-MCT task before the big one."""
    job = make_job([{0, 1, 2, 3, 4, 5, 6, 7}, {10}])
    trace = TraceBus()
    grid = make_grid(env, job, trace=trace, num_sites=1)
    grid.attach_scheduler(XSufferageScheduler(job, policy="minmin"))
    grid.run()
    order = [r.task_id for r in trace.of_type(TaskAssigned)]
    assert order[0] == 1, "the one-file task has the smaller MCT"


def test_maxmin_prefers_big_task_first(env):
    job = make_job([{0, 1, 2, 3, 4, 5, 6, 7}, {10}])
    trace = TraceBus()
    grid = make_grid(env, job, trace=trace, num_sites=1)
    grid.attach_scheduler(XSufferageScheduler(job, policy="maxmin"))
    grid.run()
    order = [r.task_id for r in trace.of_type(TaskAssigned)]
    assert order[0] == 0, "the eight-file task has the larger MCT"


def test_registry_mct_variants(tiny_job):
    import random
    from repro.core.registry import create_scheduler
    for name, policy in (("minmin", "minmin"), ("maxmin", "maxmin"),
                         ("xsufferage", "xsufferage")):
        scheduler = create_scheduler(name, tiny_job, random.Random(0))
        assert isinstance(scheduler, XSufferageScheduler)
        assert scheduler.policy == policy


def test_xsufferage_deterministic(env, tiny_job):
    def run_once():
        from repro.sim import Environment
        env_i = Environment()
        trace = TraceBus()
        grid = make_grid(env_i, tiny_job, trace=trace, num_sites=2)
        grid.attach_scheduler(XSufferageScheduler(tiny_job))
        result = grid.run()
        return (result.makespan,
                [r.task_id for r in trace.of_type(TaskCompleted)])

    assert run_once() == run_once()
