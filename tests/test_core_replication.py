"""DataReplicator: popularity-threshold proactive pushes."""


import pytest

from repro.core.replication import DataReplicator
from repro.core.workqueue import WorkqueueScheduler
from repro.analysis.trace import TraceBus

from conftest import make_grid, make_job


def test_parameter_validation(env, tiny_job):
    grid = make_grid(env, tiny_job)
    with pytest.raises(ValueError):
        DataReplicator(grid, popularity_threshold=0)
    with pytest.raises(ValueError):
        DataReplicator(grid, max_replicas=0)


def test_hot_file_gets_replicated(env):
    """A file needed by many tasks spread over sites crosses the
    popularity threshold and is pushed proactively."""
    # file 0 is in every task; other files distinct
    job = make_job([{0, i + 1} for i in range(8)])
    trace = TraceBus()
    grid = make_grid(env, job, trace=trace, num_sites=3)
    replicator = DataReplicator(grid, popularity_threshold=2,
                                max_replicas=2)
    grid.attach_scheduler(WorkqueueScheduler(job))
    grid.run()
    assert replicator.replications >= 1


def test_max_replicas_cap(env):
    job = make_job([{0, i + 1} for i in range(10)])
    trace = TraceBus()
    grid = make_grid(env, job, trace=trace, num_sites=4)
    replicator = DataReplicator(grid, popularity_threshold=1,
                                max_replicas=1)
    grid.attach_scheduler(WorkqueueScheduler(job))
    grid.run()
    pushed_per_file = [len(sites) for sites in replicator._pushed.values()]
    assert all(count <= 1 for count in pushed_per_file)


def test_cold_files_not_replicated(env):
    """With a huge threshold nothing is pushed."""
    job = make_job([{i} for i in range(5)])
    grid = make_grid(env, job, num_sites=2)
    replicator = DataReplicator(grid, popularity_threshold=100)
    grid.attach_scheduler(WorkqueueScheduler(job))
    grid.run()
    assert replicator.replications == 0


def test_replication_counts_as_file_transfer(env):
    job = make_job([{0, i + 1} for i in range(6)])
    grid_plain = make_grid(env, job, num_sites=3)
    grid_plain.attach_scheduler(WorkqueueScheduler(job))
    plain = grid_plain.run().file_transfers

    from repro.sim import Environment
    env2 = Environment()
    grid_repl = make_grid(env2, job, num_sites=3)
    replicator = DataReplicator(grid_repl, popularity_threshold=1,
                                max_replicas=2)
    grid_repl.attach_scheduler(WorkqueueScheduler(job))
    with_repl = grid_repl.run().file_transfers
    assert with_repl >= plain
    assert replicator.replications > 0
