"""StorageAffinityScheduler: distribution, queues, replication, cancel."""


import pytest

from repro.analysis.trace import (TaskAssigned, TaskCancelled,
                                  TaskCompleted, TraceBus)
from repro.core.storage_affinity import StorageAffinityScheduler

from conftest import make_grid, make_job


def build(env, job, num_sites=2, workers_per_site=1, balance_factor=2.0,
          **grid_kwargs):
    trace = TraceBus()
    grid = make_grid(env, job, trace=trace, num_sites=num_sites,
                     workers_per_site=workers_per_site, **grid_kwargs)
    scheduler = StorageAffinityScheduler(job,
                                         balance_factor=balance_factor)
    grid.attach_scheduler(scheduler)
    return grid, scheduler, trace


def test_balance_factor_validation(tiny_job):
    with pytest.raises(ValueError):
        StorageAffinityScheduler(tiny_job, balance_factor=0.5)


def test_completes_all_tasks(env, tiny_job):
    grid, scheduler, trace = build(env, tiny_job)
    grid.run()
    assert scheduler.tasks_remaining == 0
    completed = {r.task_id for r in trace.of_type(TaskCompleted)}
    assert completed == {0, 1, 2, 3}


def test_initial_distribution_assigns_everything(env, tiny_job):
    grid, scheduler, trace = build(env, tiny_job)
    # distribution happens at bind time, before the clock moves
    assigned = [r for r in trace.of_type(TaskAssigned)]
    assert len(assigned) == len(tiny_job)
    assert all(r.time == 0.0 for r in assigned)
    assert sum(scheduler.initial_site_load) == len(tiny_job)
    grid.run()


def test_balance_cap_limits_site_share(env):
    """No site may exceed balance_factor x fair share initially."""
    job = make_job([{0, 1, 2} for _ in range(12)] )
    # NB distinct ids needed -> build manually with overlapping sets
    job = make_job([{i, i + 1} for i in range(12)])
    grid, scheduler, _trace = build(env, job, num_sites=3,
                                    balance_factor=1.5)
    fair = -(-12 // 3)
    assert max(scheduler.initial_site_load) <= int(1.5 * fair)
    grid.run()


def test_affinity_groups_overlapping_tasks(env):
    """Tasks sharing files land on the same site (greedy affinity)."""
    group_a = [{0, 1, 2, 3}, {1, 2, 3, 4}, {2, 3, 4, 5}]
    group_b = [{10, 11, 12, 13}, {11, 12, 13, 14}, {12, 13, 14, 15}]
    job = make_job(group_a + group_b)
    grid, _scheduler, trace = build(env, job, num_sites=2,
                                    balance_factor=2.0)
    sites_of = {}
    for record in trace.of_type(TaskAssigned):
        sites_of.setdefault(record.task_id, record.site)
    # within each group, at least two tasks share a site
    a_sites = [sites_of[i] for i in range(3)]
    b_sites = [sites_of[i + 3] for i in range(3)]
    assert len(set(a_sites)) < 3 or len(set(b_sites)) < 3
    grid.run()


def test_replication_kicks_in_when_idle(env):
    """With many workers and few tasks, replicas appear and one copy
    gets cancelled."""
    job = make_job([{0, 1}, {2, 3}], flops=2e9 * 500)
    grid, _scheduler, trace = build(env, job, num_sites=2,
                                    workers_per_site=2,
                                    speed_mflops=1000.0)
    # Desynchronize speeds so one replica clearly wins the race.
    for index, worker in enumerate(grid.workers):
        worker.flops_per_second = 1e9 * (1.0 + 0.3 * index)
    grid.run()
    completed = sorted({r.task_id for r in trace.of_type(TaskCompleted)})
    assert completed == [0, 1]
    # 4 workers, 2 tasks: the 2 extra workers must have replicated
    assigned = [r.task_id for r in trace.of_type(TaskAssigned)]
    assert len(assigned) > 2
    assert trace.count(TaskCancelled) >= 1


def test_duplicate_completion_tolerated(env):
    """Two replicas can finish almost simultaneously."""
    job = make_job([{0}], flops=1e6)
    grid, scheduler, trace = build(env, job, num_sites=2,
                                   workers_per_site=1,
                                   speed_mflops=1000.0)
    grid.run()
    assert scheduler.tasks_remaining == 0
    # exactly one completion counted even if a replica also finished
    assert len({r.task_id for r in trace.of_type(TaskCompleted)}) == 1


def test_queued_copies_of_completed_tasks_skipped(env):
    job = make_job([{i} for i in range(6)])
    grid, scheduler, trace = build(env, job, num_sites=2)
    grid.run()
    ids = [r.task_id for r in trace.of_type(TaskCompleted)]
    assert sorted(set(ids)) == list(range(6))
    assert len(ids) == len(set(ids))


def test_workers_terminate_after_job(env, tiny_job):
    grid, _scheduler, _trace = build(env, tiny_job)
    grid.run()
    assert all(not w.process.is_alive for w in grid.workers)


def test_premature_decision_effect_visible(env):
    """With tiny storage, queued assignments go stale and extra
    transfers happen compared to ample storage."""
    tasks = [{i, i + 1, i + 2, i + 3} for i in range(0, 30, 2)]
    job = make_job(tasks)

    def transfers_with_capacity(capacity):
        from repro.sim import Environment
        env_i = Environment()
        grid, _sched, _tr = build(env_i, job, num_sites=2,
                                  capacity_files=capacity)
        grid.run()
        return grid.file_server.transfers_served

    assert transfers_with_capacity(4) >= transfers_with_capacity(100)
