"""WorkerCentricScheduler: ChooseTask(n), metric behaviour, termination."""

import random

import pytest

from repro.analysis.trace import TaskAssigned, TraceBus
from repro.core.worker_centric import WorkerCentricScheduler

from conftest import make_grid, make_job


def build(env, job, metric="rest", n=1, seed=0, **grid_kwargs):
    trace = TraceBus()
    grid = make_grid(env, job, trace=trace, **grid_kwargs)
    scheduler = WorkerCentricScheduler(job, metric=metric, n=n,
                                       rng=random.Random(seed))
    grid.attach_scheduler(scheduler)
    return grid, scheduler, trace


def test_unknown_metric_rejected(tiny_job):
    with pytest.raises(ValueError):
        WorkerCentricScheduler(tiny_job, metric="nope")


def test_bad_n_rejected(tiny_job):
    with pytest.raises(ValueError):
        WorkerCentricScheduler(tiny_job, n=0)


@pytest.mark.parametrize("metric", ["overlap", "rest", "combined",
                                    "combined-literal"])
def test_completes_all_tasks(env, tiny_job, metric):
    _grid, scheduler, _trace = build(env, tiny_job, metric=metric)
    _grid.run()
    assert scheduler.tasks_remaining == 0


@pytest.mark.parametrize("n", [1, 2, 4])
def test_randomized_variants_complete(env, tiny_job, n):
    _grid, scheduler, _trace = build(env, tiny_job, metric="rest", n=n)
    _grid.run()
    assert scheduler.tasks_remaining == 0


def test_every_task_assigned_exactly_once(env, tiny_job):
    _grid, _scheduler, trace = build(env, tiny_job, num_sites=2)
    _grid.run()
    assigned = [r.task_id for r in trace.of_type(TaskAssigned)]
    assert sorted(assigned) == [0, 1, 2, 3]


def test_rest_prefers_fewest_missing(env):
    """After running a task, the site is handed the best-overlapping
    neighbour, not the FIFO-next one."""
    # tasks: 0 shares 4 of 5 files with 2; task 1 is disjoint
    job = make_job([
        {0, 1, 2, 3, 4},
        {10, 11, 12, 13, 14},
        {1, 2, 3, 4, 5},
    ])
    _grid, _scheduler, trace = build(env, job, metric="rest", num_sites=1)
    _grid.run()
    order = [r.task_id for r in trace.of_type(TaskAssigned)]
    assert order[0] == 0
    assert order[1] == 2, "rest must jump to the overlapping task"


def test_overlap_prefers_max_resident(env):
    job = make_job([
        {0, 1, 2, 3, 4},
        {4, 5},            # overlap 1 after task 0
        {0, 1, 2, 9, 10},  # overlap 3 after task 0
    ])
    _grid, _scheduler, trace = build(env, job, metric="overlap",
                                     num_sites=1)
    _grid.run()
    order = [r.task_id for r in trace.of_type(TaskAssigned)]
    assert order == [0, 2, 1]


def test_deterministic_n1_is_reproducible(env, tiny_job):
    results = []
    for _ in range(2):
        from repro.sim import Environment
        env_i = Environment()
        _grid, _sched, trace = build(env_i, tiny_job, metric="rest", n=1)
        _grid.run()
        results.append([r.task_id for r in trace.of_type(TaskAssigned)])
    assert results[0] == results[1]


def test_choose_task_samples_only_top_n():
    """With n=2, only the two best tasks may be picked first."""
    job = make_job([
        {0, 1, 2, 3, 4, 5, 6, 7, 8, 9},   # 10 files
        {0, 1, 2},                        # 3 files (best zero-overlap)
        {10, 11, 12, 13},                 # 4 files (second best)
    ])
    first_picks = set()
    for seed in range(20):
        from repro.sim import Environment
        env_i = Environment()
        trace = TraceBus()
        grid = make_grid(env_i, job, trace=trace, num_sites=1)
        scheduler = WorkerCentricScheduler(job, metric="rest", n=2,
                                           rng=random.Random(seed))
        grid.attach_scheduler(scheduler)
        grid.run()
        first_picks.add(trace.of_type(TaskAssigned)[0].task_id)
    assert first_picks <= {1, 2}
    assert len(first_picks) == 2, "n=2 should actually randomize"


def test_weight_proportional_sampling_prefers_heavier():
    """Task with 4x the weight should win clearly more often."""
    job = make_job([
        {0},          # rest weight 1/1 = 1.0 (zero overlap)
        {1, 2, 3, 4},  # rest weight 1/4
    ])
    wins = 0
    trials = 200
    for seed in range(trials):
        from repro.sim import Environment
        env_i = Environment()
        trace = TraceBus()
        grid = make_grid(env_i, job, trace=trace, num_sites=1)
        scheduler = WorkerCentricScheduler(job, metric="rest", n=2,
                                           rng=random.Random(seed))
        grid.attach_scheduler(scheduler)
        grid.run()
        if trace.of_type(TaskAssigned)[0].task_id == 0:
            wins += 1
    assert wins / trials == pytest.approx(0.8, abs=0.08)


def test_parked_worker_released_at_end(env):
    """More workers than tasks: extra workers get None and terminate."""
    job = make_job([{0}])
    grid, scheduler, _trace = build(env, job, num_sites=2,
                                    workers_per_site=2)
    grid.run()
    assert scheduler.tasks_remaining == 0
    assert all(not w.process.is_alive for w in grid.workers)


def test_requeue_returns_task(env, tiny_job):
    scheduler = WorkerCentricScheduler(tiny_job, metric="rest")
    grid = make_grid(env, tiny_job)
    grid.attach_scheduler(scheduler)
    task = tiny_job[0]
    scheduler._retire(task)
    scheduler.requeue(task)
    assert task.task_id in scheduler._pending
    with pytest.raises(ValueError):
        scheduler.requeue(task)
    grid.run()
    assert scheduler.tasks_remaining == 0


def test_decision_instrumentation(env, tiny_job):
    _grid, scheduler, _trace = build(env, tiny_job)
    _grid.run()
    assert scheduler.decisions == len(tiny_job)
    assert scheduler.tasks_scored >= scheduler.decisions
