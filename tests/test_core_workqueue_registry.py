"""Workqueue/random baselines and the scheduler registry."""

import random

import pytest

from repro.analysis.trace import TaskAssigned, TraceBus
from repro.core import (PAPER_ALGORITHMS, StorageAffinityScheduler,
                        WorkerCentricScheduler, WorkqueueScheduler,
                        available_schedulers, create_scheduler)

from conftest import make_grid, make_job


def test_workqueue_dispatches_fifo(env, tiny_job):
    trace = TraceBus()
    grid = make_grid(env, tiny_job, trace=trace, num_sites=1)
    grid.attach_scheduler(WorkqueueScheduler(tiny_job))
    grid.run()
    order = [r.task_id for r in trace.of_type(TaskAssigned)]
    assert order == [0, 1, 2, 3]


def test_workqueue_respects_job_sequence_order(env):
    """FIFO follows presentation order, not task-id order."""
    from repro.grid.job import Job, Task
    from repro.grid.files import FileCatalog
    catalog = FileCatalog(5)
    tasks = [Task(2, frozenset({0})), Task(0, frozenset({1})),
             Task(1, frozenset({2}))]
    job = Job(tasks, catalog)
    trace = TraceBus()
    grid = make_grid(env, job, trace=trace, num_sites=1)
    grid.attach_scheduler(WorkqueueScheduler(job))
    grid.run()
    order = [r.task_id for r in trace.of_type(TaskAssigned)]
    assert order == [2, 0, 1]


def test_random_dispatch_differs_from_fifo(env):
    job = make_job([{i} for i in range(12)])
    orders = []
    for seed in (1, 2):
        from repro.sim import Environment
        env_i = Environment()
        trace = TraceBus()
        grid = make_grid(env_i, job, trace=trace, num_sites=1)
        grid.attach_scheduler(WorkqueueScheduler(
            job, randomize=True, rng=random.Random(seed)))
        grid.run()
        orders.append([r.task_id for r in trace.of_type(TaskAssigned)])
    assert orders[0] != list(range(12)) or orders[1] != list(range(12))


def test_random_completes_everything(env, tiny_job):
    grid = make_grid(env, tiny_job)
    scheduler = WorkqueueScheduler(tiny_job, randomize=True,
                                   rng=random.Random(7))
    grid.attach_scheduler(scheduler)
    grid.run()
    assert scheduler.tasks_remaining == 0


def test_extra_workers_park_and_terminate(env):
    job = make_job([{0}])
    grid = make_grid(env, job, num_sites=2, workers_per_site=2)
    grid.attach_scheduler(WorkqueueScheduler(job))
    grid.run()
    assert all(not w.process.is_alive for w in grid.workers)


# -- registry ------------------------------------------------------------

def test_paper_algorithms_listed():
    assert PAPER_ALGORITHMS == ("storage-affinity", "overlap", "rest",
                                "combined", "rest.2", "combined.2")


def test_available_contains_paper_algorithms():
    names = available_schedulers()
    for name in PAPER_ALGORITHMS:
        assert name in names


@pytest.mark.parametrize("name,cls,attrs", [
    ("storage-affinity", StorageAffinityScheduler, {}),
    ("overlap", WorkerCentricScheduler,
     {"metric_name": "overlap", "n": 1}),
    ("rest", WorkerCentricScheduler, {"metric_name": "rest", "n": 1}),
    ("combined", WorkerCentricScheduler,
     {"metric_name": "combined", "n": 1}),
    ("rest.2", WorkerCentricScheduler, {"metric_name": "rest", "n": 2}),
    ("combined.2", WorkerCentricScheduler,
     {"metric_name": "combined", "n": 2}),
    ("combined-literal", WorkerCentricScheduler,
     {"metric_name": "combined-literal", "n": 1}),
    ("workqueue", WorkqueueScheduler, {"randomize": False}),
    ("random", WorkqueueScheduler, {"randomize": True}),
])
def test_registry_builds_correct_policy(tiny_job, name, cls, attrs):
    scheduler = create_scheduler(name, tiny_job, random.Random(0))
    assert isinstance(scheduler, cls)
    for attr, expected in attrs.items():
        assert getattr(scheduler, attr) == expected


def test_generic_wc_form(tiny_job):
    scheduler = create_scheduler("wc:rest:4", tiny_job)
    assert isinstance(scheduler, WorkerCentricScheduler)
    assert scheduler.metric_name == "rest"
    assert scheduler.n == 4


@pytest.mark.parametrize("bad", ["nope", "wc:rest", "wc:bogus:2",
                                 "wc:rest:x", "naive-wc:bogus:1"])
def test_bad_names_rejected(tiny_job, bad):
    with pytest.raises(ValueError):
        create_scheduler(bad, tiny_job)


def test_naive_wc_form(tiny_job):
    from repro.core import NaiveWorkerCentricScheduler
    scheduler = create_scheduler("naive-wc:combined:2", tiny_job)
    assert isinstance(scheduler, NaiveWorkerCentricScheduler)
    assert scheduler.metric_name == "combined"
    assert scheduler.n == 2


def test_create_with_deferred_tasks(tiny_job):
    scheduler = create_scheduler("rest", tiny_job,
                                 initial_task_ids={0, 1})
    assert scheduler.supports_dynamic_release
    naive = create_scheduler("naive-wc:rest:1", tiny_job,
                             initial_task_ids={0})
    assert naive.supports_dynamic_release


def test_deferred_tasks_rejected_for_offline_planner(tiny_job):
    with pytest.raises(ValueError):
        create_scheduler("storage-affinity", tiny_job,
                         initial_task_ids={0})
    with pytest.raises(ValueError):
        create_scheduler("spatial-clustering", tiny_job,
                         initial_task_ids={0})
