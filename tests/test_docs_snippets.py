"""The documentation's code snippets must actually run.

Extracts the README's quickstart Python block and executes it (at a
reduced task count), and checks the CLI lines it advertises parse.
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).parent.parent / "README.md"


def python_blocks(text):
    return re.findall(r"```python\n(.*?)```", text, re.DOTALL)


def bash_blocks(text):
    return re.findall(r"```bash\n(.*?)```", text, re.DOTALL)


@pytest.fixture(scope="module")
def readme_text():
    return README.read_text()


def test_readme_quickstart_block_runs(readme_text):
    blocks = python_blocks(readme_text)
    assert blocks, "README must have a python quickstart"
    code = blocks[0].replace("num_tasks=600", "num_tasks=40") \
                    .replace("capacity_files=600", "capacity_files=400")
    namespace = {}
    exec(compile(code, "README-quickstart", "exec"), namespace)


def test_readme_cli_lines_parse(readme_text):
    from repro.cli import build_parser
    parser = build_parser()
    for block in bash_blocks(readme_text):
        for line in block.splitlines():
            line = line.strip()
            if not line.startswith("python -m repro "):
                continue
            argv = line.split()[3:]
            # parse only; don't execute (some would run for minutes)
            args = parser.parse_args(argv)
            assert args.command


def test_readme_mentions_every_package(readme_text):
    for package in ("repro.sim", "repro.net", "repro.grid",
                    "repro.workload", "repro.core", "repro.exp",
                    "repro.analysis"):
        assert package in readme_text


def test_examples_referenced_in_readme_exist(readme_text):
    for match in re.findall(r"examples/([a-z_]+\.py)", readme_text):
        assert (README.parent / "examples" / match).exists(), match


def test_docs_files_exist(readme_text):
    for match in re.findall(r"docs/([a-z-]+\.md)", readme_text):
        assert (README.parent / "docs" / match).exists(), match


def test_experiments_md_cites_existing_artifacts():
    experiments = (README.parent / "EXPERIMENTS.md").read_text()
    results_dir = README.parent / "benchmarks" / "results"
    for match in set(re.findall(r"`([a-z0-9_]+\.txt)`", experiments)):
        assert (results_dir / match).exists(), f"missing artifact {match}"
