"""End-to-end checks of the paper's *prose* claims, at test scale.

Each test here pins one sentence from the paper to a measurable
outcome, complementing the benchmark suite's figure-level shapes.
"""

import pytest

from repro.exp import ExperimentConfig, run_experiment
from repro.exp.runner import build_job


def config(**overrides):
    defaults = dict(num_tasks=300, num_sites=10, capacity_files=600)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture(scope="module")
def results():
    """Averaged over 2 topologies (the paper's protocol, scaled)."""
    from repro.exp.runner import run_averaged
    names = ("rest", "rest.2", "overlap", "combined", "combined.2",
             "storage-affinity", "workqueue")
    job = build_job(config())
    return {name: run_averaged(config(scheduler=name),
                               topology_seeds=(0, 1), job=job)
            for name in names}


def test_data_intensive_apps_are_network_bound(results):
    """Section 2.1: 'data transfer time is the dominating factor'."""
    result = run_experiment(config(scheduler="rest", keep_trace=True))
    from repro.analysis.timeline import phase_totals, worker_spans
    totals = phase_totals(worker_spans(result.trace), result.makespan)
    mean_fetch = sum(f for _i, f, _c in totals.values()) / len(totals)
    mean_compute = sum(c for _i, _f, c in totals.values()) / len(totals)
    assert mean_fetch > 3 * mean_compute


def test_metrics_considering_transfers_beat_overlap(results):
    """Conclusion: 'metrics considering the number of file transfers
    generally give better performance over metrics considering the
    overlap'."""
    best_transfer_metric = min(results["rest"].makespan,
                               results["combined"].makespan)
    assert best_transfer_metric <= results["overlap"].makespan


def test_worker_centric_better_or_comparable(results):
    """Conclusion: 'worker-centric scheduling algorithms achieve better
    or comparable performance in all the scenarios we consider'."""
    best_wc = min(results[name].makespan
                  for name in ("rest", "rest.2", "combined",
                               "combined.2"))
    assert best_wc <= results["storage-affinity"].makespan * 1.05


def test_data_reuse_dramatically_beats_blind(results):
    """Section 2.4: reuse gives 'a dramatic performance improvement'."""
    assert results["rest"].makespan < 0.5 * results["workqueue"].makespan


def test_task_centric_needs_replication_machinery(results):
    """Section 3: storage affinity relies on task replication — its runs
    cancel replicas; worker-centric runs never cancel anything."""
    assert results["storage-affinity"].tasks_cancelled > 0
    for name in ("rest", "rest.2", "combined", "combined.2", "overlap"):
        assert results[name].tasks_cancelled == 0


def test_randomization_avoids_suboptimal_decisions(results):
    """Section 4.3/5.4: randomized selection avoids sub-optimal
    deterministic picks — the best randomized variant leads."""
    best_randomized = min(results["rest.2"].makespan,
                          results["combined.2"].makespan)
    best_deterministic = min(results["rest"].makespan,
                             results["combined"].makespan)
    assert best_randomized <= best_deterministic * 1.05


def test_no_knowledge_about_other_workers():
    """Section 4.4: the worker-centric scheduler must not consult other
    sites' storages when scoring a request."""
    import random
    from repro.core.worker_centric import WorkerCentricScheduler
    from repro.exp.runner import build_grid
    cfg = config(scheduler="rest")
    job = build_job(cfg)
    grid = build_grid(cfg, job)
    scheduler = WorkerCentricScheduler(job, metric="rest",
                                       rng=random.Random(0))
    grid.attach_scheduler(scheduler)
    # warm site 1's storage; a decision for site 0 must be unaffected
    worker0 = grid.sites[0].workers[0]
    before = scheduler._choose(worker0).task_id
    for fid in list(job[0].files)[:5]:
        grid.sites[1].storage.insert(fid)
    after = scheduler._choose(worker0).task_id
    assert before == after
