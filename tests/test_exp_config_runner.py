"""ExperimentConfig validation and the runner end to end."""

import pytest

from repro.exp import (ExperimentConfig, build_grid, build_job,
                       run_averaged, run_experiment)


def small_config(**overrides):
    defaults = dict(scheduler="rest", num_tasks=40, num_sites=3,
                    capacity_files=500)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def test_defaults_match_table1():
    config = ExperimentConfig()
    assert config.capacity_files == 6000
    assert config.workers_per_site == 1
    assert config.num_sites == 10
    assert config.file_size_mb == 25.0
    assert config.num_tasks == 6000


@pytest.mark.parametrize("field,value", [
    ("num_tasks", 0), ("num_sites", 0), ("workers_per_site", 0),
    ("capacity_files", 0), ("file_size_mb", 0.0),
    ("task_order", "bogus"),
])
def test_validation(field, value):
    with pytest.raises(ValueError):
        ExperimentConfig(**{field: value})


def test_with_changes():
    config = ExperimentConfig(num_tasks=100)
    changed = config.with_changes(capacity_files=42)
    assert changed.capacity_files == 42
    assert changed.num_tasks == 100
    assert config.capacity_files == 6000  # original untouched


def test_file_size_bytes():
    assert ExperimentConfig(file_size_mb=5.0).file_size_bytes \
        == 5 * 1024 * 1024


def test_custom_tiers_must_cover_sites():
    from repro.net import TiersParams
    with pytest.raises(ValueError):
        ExperimentConfig(num_sites=10,
                         tiers=TiersParams(num_sites=4)).tiers_params()


def test_build_job_is_deterministic():
    config = small_config()
    a, b = build_job(config), build_job(config)
    assert all(ta.files == tb.files for ta, tb in zip(a, b))


@pytest.mark.parametrize("workload", ["coadd", "uniform", "zipf", "window"])
def test_build_job_workloads(workload):
    config = small_config(workload=workload, num_tasks=15)
    job = build_job(config)
    assert len(job) == 15


def test_build_job_unknown_workload():
    with pytest.raises(ValueError):
        build_job(small_config(workload="nope"))


def test_build_grid_shape():
    config = small_config(workers_per_site=2)
    grid = build_grid(config, build_job(config))
    assert len(grid.sites) == 3
    assert all(site.num_workers == 2 for site in grid.sites)
    assert all(site.storage.capacity_files == 500 for site in grid.sites)


def test_run_experiment_completes():
    result = run_experiment(small_config())
    assert result.makespan > 0
    assert result.file_transfers > 0
    assert result.makespan_minutes == pytest.approx(result.makespan / 60)
    assert len(result.site_stats) == 3
    assert result.decisions == 40


def test_run_experiment_is_reproducible():
    a = run_experiment(small_config(scheduler="combined.2"))
    b = run_experiment(small_config(scheduler="combined.2"))
    assert a.makespan == b.makespan
    assert a.file_transfers == b.file_transfers


def test_topology_seed_changes_outcome():
    a = run_experiment(small_config())
    b = run_experiment(small_config(topology_seed=1))
    assert a.makespan != b.makespan


def test_keep_trace_records():
    result = run_experiment(small_config(keep_trace=True))
    from repro.analysis.trace import TaskCompleted
    assert len(result.trace.of_type(TaskCompleted)) == 40


def test_trace_not_kept_by_default():
    result = run_experiment(small_config())
    assert result.trace.records == []
    from repro.analysis.trace import TaskCompleted
    assert result.trace.count(TaskCompleted) == 40  # counters still work


def test_run_averaged_means():
    averaged = run_averaged(small_config(), topology_seeds=(0, 1))
    assert len(averaged.runs) == 2
    expected = sum(r.makespan for r in averaged.runs) / 2
    assert averaged.makespan == pytest.approx(expected)
    assert averaged.topology_seeds == (0, 1)


def test_run_averaged_requires_seeds():
    with pytest.raises(ValueError):
        run_averaged(small_config(), topology_seeds=())


def test_replication_option_counts():
    result = run_experiment(small_config(replicate_data=True,
                                         replication_threshold=1))
    assert result.data_replications > 0


def test_failure_option_counts():
    result = run_experiment(small_config(worker_mtbf=500.0,
                                         worker_repair_time=30.0))
    assert result.worker_failures >= 0  # smoke: still completes
    assert result.makespan > 0
