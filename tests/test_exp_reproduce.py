"""The one-shot reproduction report."""

import pytest

from repro.exp.figures import Scale
from repro.exp.reproduce import reproduce_all

#: A deliberately tiny scale so the full report runs in seconds.
MICRO = Scale(
    name="micro", num_tasks=40, capacity_default=300,
    capacities=(200, 300), workers=(2,), table3_workers=(2,),
    sites=(2, 3), file_sizes_mb=(5.0, 25.0), topology_seeds=(0,),
)


@pytest.fixture(scope="module")
def report():
    messages = []
    text = reproduce_all(MICRO, include_ablations=False,
                         progress=messages.append)
    return text, messages


def test_report_contains_every_artifact(report):
    text, _messages = report
    for marker in ("Table 2", "Figure 4", "Figure 5", "Figure 6",
                   "Table 3", "Figure 7", "Figure 8"):
        assert marker in text, f"missing section {marker}"


def test_report_mentions_algorithms(report):
    text, _messages = report
    for name in ("storage-affinity", "rest.2", "combined.2"):
        assert name in text


def test_progress_messages_emitted(report):
    _text, messages = report
    assert any("Figure 4" in m or "capacity" in m for m in messages)
    assert len(messages) >= 6


def test_report_is_markdown(report):
    text, _messages = report
    assert text.startswith("# Reproduction report")
    assert text.count("```") % 2 == 0  # balanced code fences


def test_ablations_flag_adds_sections():
    text = reproduce_all(MICRO, include_ablations=True)
    assert "ChooseTask(n)" in text
    assert "combined-literal" in text
    assert "task presentation order" in text.lower() \
        or "task order" in text.lower()
