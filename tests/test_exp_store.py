"""Result archival (JSONL store)."""

import pytest

from repro.exp import ExperimentConfig, run_experiment
from repro.exp.store import (ResultRecord, ResultStore, result_from_dict,
                             result_to_dict)


@pytest.fixture(scope="module")
def small_result():
    return run_experiment(ExperimentConfig(
        scheduler="rest", num_tasks=25, num_sites=2, capacity_files=400))


def test_roundtrip_dict(small_result):
    record = result_from_dict(result_to_dict(small_result))
    assert record.makespan == small_result.makespan
    assert record.file_transfers == small_result.file_transfers
    assert record.config == small_result.config
    assert record.makespan_minutes == pytest.approx(
        small_result.makespan_minutes)


def test_roundtrip_preserves_tiers():
    from repro.net import TiersParams
    config = ExperimentConfig(num_tasks=10, num_sites=2,
                              tiers=TiersParams(num_sites=3))
    fake = ResultRecord(config=config, makespan=1.0, file_transfers=2,
                        bytes_transferred=3.0, tasks_cancelled=0,
                        evictions=0, data_replications=0,
                        worker_failures=0)
    clone = result_from_dict(result_to_dict(fake))
    assert clone.config.tiers == config.tiers


def test_bad_version_rejected(small_result):
    data = result_to_dict(small_result)
    data["version"] = 99
    with pytest.raises(ValueError):
        result_from_dict(data)


def test_store_append_and_load(tmp_path, small_result):
    store = ResultStore(tmp_path / "results.jsonl")
    store.append(small_result)
    store.append(small_result)
    records = store.load()
    assert len(records) == 2
    assert records[0].makespan == small_result.makespan


def test_store_load_missing_file(tmp_path):
    store = ResultStore(tmp_path / "nothing.jsonl")
    assert store.load() == []


def test_store_query(tmp_path, small_result):
    store = ResultStore(tmp_path / "results.jsonl")
    store.append(small_result)
    other = run_experiment(ExperimentConfig(
        scheduler="workqueue", num_tasks=25, num_sites=2,
        capacity_files=400))
    store.append(other)
    assert len(store.query(scheduler="rest")) == 1
    assert len(store.query(scheduler="workqueue")) == 1
    assert len(store.query(scheduler="rest", num_tasks=25)) == 1
    assert store.query(scheduler="rest", num_tasks=999) == []


def test_makespan_samples(tmp_path, small_result):
    store = ResultStore(tmp_path / "results.jsonl")
    store.append_many([small_result, small_result])
    samples = store.makespan_samples("rest")
    assert samples == [pytest.approx(small_result.makespan_minutes)] * 2


def test_store_reappend_reloaded_record(tmp_path, small_result):
    """Reloaded records can be archived again (round-trip stability)."""
    store = ResultStore(tmp_path / "results.jsonl")
    store.append(small_result)
    record = store.load()[0]
    store.append(record)
    assert len(store.load()) == 2
