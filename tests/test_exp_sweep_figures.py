"""Sweeps, per-figure experiments (SMALL scale), and report rendering."""

import pytest

from repro.exp import (SMALL, ExperimentConfig, fig4_fig5, fig6, fig7, fig8,
                       format_sweep_table, format_table3, run_sweep,
                       table2_fig3, table3)
from repro.exp.figures import (ablation_choose_n, ablation_combined_formula,
                               ablation_data_replication,
                               ablation_task_order)
from repro.exp.report import format_series, format_site_summaries
from repro.analysis.metrics import summarize_sites


def tiny_base(**overrides):
    defaults = dict(num_tasks=30, num_sites=2, capacity_files=500)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def test_run_sweep_cells():
    sweep = run_sweep(tiny_base(), "capacity_files", (200, 500),
                      ("rest", "workqueue"), topology_seeds=(0,))
    assert set(sweep.cells) == {("rest", 200), ("rest", 500),
                                ("workqueue", 200), ("workqueue", 500)}
    series = sweep.series("rest")
    assert [x for x, _y in series] == [200, 500]
    assert all(y > 0 for _x, y in series)


def test_run_sweep_validation():
    with pytest.raises(ValueError):
        run_sweep(tiny_base(), "capacity_files", (), ("rest",))
    with pytest.raises(ValueError):
        run_sweep(tiny_base(), "capacity_files", (100,), ())


def test_sweep_shares_workload_when_safe():
    sweep = run_sweep(tiny_base(), "capacity_files", (300, 400),
                      ("rest",), topology_seeds=(0,))
    # same workload means identical task counts; just smoke-check cells
    a = sweep.cell("rest", 300)
    b = sweep.cell("rest", 400)
    assert a.runs[0].config.capacity_files == 300
    assert b.runs[0].config.capacity_files == 400


def test_sweep_workload_field_rebuilds():
    sweep = run_sweep(tiny_base(), "num_tasks", (10, 20), ("rest",),
                      topology_seeds=(0,))
    assert sweep.cell("rest", 10).runs[0].config.num_tasks == 10


def test_format_sweep_table_output():
    sweep = run_sweep(tiny_base(), "capacity_files", (200,),
                      ("rest", "workqueue"), topology_seeds=(0,))
    text = format_sweep_table(sweep, title="Fig X")
    assert "Fig X" in text
    assert "rest" in text and "workqueue" in text
    assert "200" in text


def test_format_sweep_table_transform():
    sweep = run_sweep(tiny_base(), "capacity_files", (200,), ("rest",),
                      topology_seeds=(0,))
    text = format_sweep_table(
        sweep, transform=lambda cell: cell.file_transfers / 2)
    assert text


def test_format_series():
    text = format_series([(1, 2.0), (3, 4.5)], label="demo")
    assert "# demo" in text and "1 2.0" in text and "3 4.5" in text


def test_table2_fig3_small():
    stats = table2_fig3(SMALL)
    assert stats.num_tasks == SMALL.num_tasks
    assert stats.total_files > 0
    assert 0 < stats.fraction_referenced_at_least(6) <= 1.0


def test_fig4_fig5_small_subset():
    sweep = fig4_fig5(SMALL, schedulers=("rest", "storage-affinity"))
    assert sweep.field == "capacity_files"
    assert sweep.values == SMALL.capacities
    for scheduler in ("rest", "storage-affinity"):
        for _value, makespan in sweep.series(scheduler):
            assert makespan > 0


def test_fig6_small_subset():
    sweep = fig6(SMALL, schedulers=("rest",))
    assert sweep.field == "workers_per_site"
    assert [x for x, _ in sweep.series("rest")] == list(SMALL.workers)


def test_table3_small():
    rows = table3(SMALL)
    assert [row[0] for row in rows] == list(SMALL.table3_workers)
    for _workers, waiting_h, transfer_h, transfers in rows:
        assert waiting_h >= 0
        assert transfer_h > 0
        assert transfers > 0
    text = format_table3(rows)
    assert "waiting" in text and "workers" in text


def test_fig7_small_subset():
    sweep = fig7(SMALL, schedulers=("rest",))
    assert sweep.field == "num_sites"
    makespans = dict(sweep.series("rest"))
    assert makespans[SMALL.sites[-1]] <= makespans[SMALL.sites[0]] * 1.5


def test_fig8_small_subset():
    sweep = fig8(SMALL, schedulers=("rest",))
    makespans = dict(sweep.series("rest"))
    small_size, big_size = SMALL.file_sizes_mb[0], SMALL.file_sizes_mb[-1]
    assert makespans[big_size] > makespans[small_size]


def test_ablation_choose_n_small():
    sweep = ablation_choose_n(SMALL, n_values=(1, 2))
    assert set(sweep.schedulers) == {"wc:rest:1", "wc:rest:2"}


def test_ablation_combined_formula_runs():
    small = SMALL
    sweep = ablation_combined_formula(small)
    assert ("combined", small.capacities[0]) in sweep.cells
    assert ("combined-literal", small.capacities[0]) in sweep.cells


def test_ablation_replication_runs():
    sweep = ablation_data_replication(SMALL, schedulers=("rest",))
    off = sweep.cell("rest", False)
    on = sweep.cell("rest", True)
    assert off.makespan > 0 and on.makespan > 0


def test_ablation_task_order_runs():
    sweep = ablation_task_order(SMALL, schedulers=("rest",))
    assert set(v for _s, v in sweep.cells) == {"natural", "shuffled",
                                               "striped"}


def test_site_summary_rendering():
    from repro.exp import run_experiment
    result = run_experiment(tiny_base())
    summaries = summarize_sites(result.site_stats)
    text = format_site_summaries(summaries)
    assert "site" in text
    assert len(text.splitlines()) == 1 + len(summaries)
