"""The runtime invariant validator."""

import random

import pytest

from repro.analysis.trace import TaskCompleted, TaskStarted, TraceBus
from repro.core.registry import create_scheduler
from repro.exp.validate import (GridValidator, InvariantViolation,
                                Violation)

from conftest import make_grid, make_job


@pytest.mark.parametrize("scheduler_name,replicates",
                         [("rest.2", False), ("storage-affinity", True),
                          ("xsufferage", False),
                          ("spatial-clustering", False),
                          ("workqueue", False)])
def test_clean_runs_validate(env, scheduler_name, replicates):
    job = make_job([{i, i + 1, i + 2} for i in range(12)])
    trace = TraceBus()
    grid = make_grid(env, job, trace=trace, num_sites=2,
                     workers_per_site=2, capacity_files=50)
    validator = GridValidator(grid,
                              expect_single_completion=not replicates)
    grid.attach_scheduler(create_scheduler(scheduler_name, job,
                                           random.Random(0)))
    grid.run()
    validator.final_check()  # must not raise
    assert validator.violations == []


def test_validates_under_failures(env):
    job = make_job([{i, i + 1} for i in range(10)], flops=2e9 * 10)
    trace = TraceBus()
    grid = make_grid(env, job, trace=trace, num_sites=2,
                     workers_per_site=2)
    validator = GridValidator(grid)
    grid.attach_scheduler(create_scheduler("rest", job,
                                           random.Random(1)))
    from repro.grid.failures import WorkerFailureInjector
    WorkerFailureInjector(grid, mtbf=40.0, repair_time=5.0,
                          rng=random.Random(1))
    grid.run()
    validator.final_check()


def test_detects_phantom_start(env, tiny_job):
    grid = make_grid(env, tiny_job)
    validator = GridValidator(grid)
    # forge a start record for a task whose files are not resident
    grid.trace.emit(TaskStarted(time=0.0, task_id=0, worker="w0.0",
                                site=0))
    assert validator.violations
    assert validator.violations[0].rule == "task-start-files-resident"


def test_detects_duplicate_completion_same_worker(env, tiny_job):
    grid = make_grid(env, tiny_job)
    validator = GridValidator(grid)
    record = TaskCompleted(time=1.0, task_id=0, worker="w", site=0)
    grid.trace.emit(record)
    grid.trace.emit(record)
    assert any(v.rule == "task-completes-once-per-worker"
               for v in validator.violations)


def test_replica_completion_flagged_only_when_expected(env, tiny_job):
    grid = make_grid(env, tiny_job)
    lenient = GridValidator(grid)
    strict_single = GridValidator(grid, expect_single_completion=True)
    grid.trace.emit(TaskCompleted(time=1.0, task_id=0, worker="a",
                                  site=0))
    grid.trace.emit(TaskCompleted(time=1.1, task_id=0, worker="b",
                                  site=1))
    assert lenient.violations == []
    assert any(v.rule == "task-completes-once"
               for v in strict_single.violations)


def test_strict_mode_raises_immediately(env, tiny_job):
    grid = make_grid(env, tiny_job)
    GridValidator(grid, strict=True)
    with pytest.raises(InvariantViolation):
        grid.trace.emit(TaskStarted(time=0.0, task_id=0, worker="w",
                                    site=0))


def test_final_check_flags_incomplete_job(env, tiny_job):
    grid = make_grid(env, tiny_job)
    validator = GridValidator(grid)
    with pytest.raises(InvariantViolation, match="never completed"):
        validator.final_check()


def test_assert_clean_digest(env, tiny_job):
    grid = make_grid(env, tiny_job)
    validator = GridValidator(grid)
    validator._report("demo", "something", None)
    with pytest.raises(InvariantViolation, match="demo"):
        validator.assert_clean()


def test_violation_str():
    text = str(Violation(time=12.0, rule="r", detail="d"))
    assert "r" in text and "d" in text
