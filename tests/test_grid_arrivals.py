"""Asynchronous job arrivals."""

import random

import pytest

from repro.analysis.trace import TaskAssigned, TaskCompleted, TraceBus
from repro.core.spatial_clustering import SpatialClusteringScheduler
from repro.core.worker_centric import WorkerCentricScheduler
from repro.core.workqueue import WorkqueueScheduler
from repro.grid.arrivals import (ArrivalSchedule, JobArrivalProcess,
                                 batched_arrivals, jittered_arrivals)

from conftest import make_grid, make_job


def make_sixtask_job():
    return make_job([{i, i + 1, i + 2} for i in range(6)])


# -- schedule construction ---------------------------------------------------

def test_batched_arrivals_structure():
    job = make_sixtask_job()
    schedule = batched_arrivals(job, num_batches=3, interval=100.0)
    assert len(schedule.batches) == 3
    assert [time for time, _ids in schedule.batches] == [0.0, 100.0, 200.0]
    released = [tid for _t, ids in schedule.batches for tid in ids]
    assert sorted(released) == [0, 1, 2, 3, 4, 5]


def test_batched_arrivals_validation():
    job = make_sixtask_job()
    with pytest.raises(ValueError):
        batched_arrivals(job, num_batches=0, interval=1.0)
    with pytest.raises(ValueError):
        batched_arrivals(job, num_batches=2, interval=-1.0)


def test_schedule_rejects_duplicates():
    with pytest.raises(ValueError):
        ArrivalSchedule(((0.0, (1, 2)), (5.0, (2,))))


def test_schedule_rejects_unordered():
    with pytest.raises(ValueError):
        ArrivalSchedule(((5.0, (1,)), (0.0, (2,))))


def test_schedule_rejects_negative_time():
    with pytest.raises(ValueError):
        ArrivalSchedule(((-1.0, (1,)),))


def test_initial_and_deferred_ids():
    job = make_sixtask_job()
    schedule = ArrivalSchedule(((0.0, (0, 1)), (50.0, (2, 3)),
                                (90.0, (4,))))
    assert schedule.deferred_task_ids == {2, 3, 4}
    # task 5 not listed anywhere: available at start
    assert schedule.initial_task_ids(job) == {0, 1, 5}


def test_jittered_arrivals_monotone():
    job = make_job([{i} for i in range(12)])
    schedule = jittered_arrivals(job, num_batches=4, interval=60.0,
                                 rng=random.Random(1))
    times = [t for t, _ids in schedule.batches]
    assert times == sorted(times)
    assert times[0] == 0.0
    with pytest.raises(ValueError):
        jittered_arrivals(job, 2, 60.0, random.Random(0), jitter=1.0)


# -- end-to-end ---------------------------------------------------------------

def run_with_arrivals(env, scheduler_cls, interval=200.0, **sched_kwargs):
    job = make_sixtask_job()
    schedule = batched_arrivals(job, num_batches=3, interval=interval)
    trace = TraceBus()
    grid = make_grid(env, job, trace=trace, num_sites=2)
    scheduler = scheduler_cls(
        job, initial_task_ids=schedule.initial_task_ids(job),
        **sched_kwargs)
    grid.attach_scheduler(scheduler)
    JobArrivalProcess(grid, schedule)
    result = grid.run()
    return job, trace, result, schedule


def test_worker_centric_completes_under_arrivals(env):
    job, trace, result, _schedule = run_with_arrivals(
        env, WorkerCentricScheduler, metric="rest")
    ids = sorted({r.task_id for r in trace.of_type(TaskCompleted)})
    assert ids == [t.task_id for t in job]


def test_deferred_tasks_not_assigned_early(env):
    _job, trace, _result, schedule = run_with_arrivals(
        env, WorkerCentricScheduler, metric="rest", interval=500.0)
    release_time = {tid: time for time, ids in schedule.batches
                    for tid in ids}
    for record in trace.of_type(TaskAssigned):
        assert record.time >= release_time[record.task_id] - 1e-9, \
            f"task {record.task_id} assigned before its arrival"


def test_workqueue_supports_arrivals(env):
    _job, trace, result, _schedule = run_with_arrivals(
        env, WorkqueueScheduler)
    assert result.tasks_completed == 6


def test_parked_workers_wake_on_arrival(env):
    """All workers idle when a late batch lands: they must pick it up."""
    job = make_job([{0}, {1}, {2}])
    schedule = ArrivalSchedule(((0.0, (0,)), (5000.0, (1, 2))))
    grid = make_grid(env, job, num_sites=2)
    scheduler = WorkerCentricScheduler(
        job, metric="rest",
        initial_task_ids=schedule.initial_task_ids(job))
    grid.attach_scheduler(scheduler)
    JobArrivalProcess(grid, schedule)
    result = grid.run()
    assert result.tasks_completed == 3
    assert result.makespan > 5000.0


def test_offline_planner_rejected(env):
    job = make_sixtask_job()
    schedule = batched_arrivals(job, num_batches=2, interval=100.0)
    grid = make_grid(env, job, num_sites=2)
    grid.attach_scheduler(SpatialClusteringScheduler(job))
    with pytest.raises(TypeError):
        JobArrivalProcess(grid, schedule)


def test_arrivals_require_attached_scheduler(env):
    job = make_sixtask_job()
    grid = make_grid(env, job)
    with pytest.raises(RuntimeError):
        JobArrivalProcess(grid, batched_arrivals(job, 2, 10.0))


def test_makespan_reflects_arrival_delay(env):
    """The same job takes longer when most of it arrives late."""
    def run(interval):
        from repro.sim import Environment
        env_i = Environment()
        _job, _trace, result, _s = run_with_arrivals(
            env_i, WorkerCentricScheduler, metric="rest",
            interval=interval)
        return result.makespan

    assert run(2000.0) > run(0.0)
