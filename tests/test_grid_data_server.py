"""DataServer: serial batch service, pinning, cancellation, stats."""

import pytest

from repro.analysis.trace import BatchServed, FileTransferred, TraceBus
from repro.grid.data_server import CANCELLED, DONE, DataServer
from repro.grid.file_server import FileServer
from repro.grid.files import FileCatalog
from repro.grid.storage import SiteStorage
from repro.net import FlowNetwork, Topology


def make_server(env, capacity=100, num_files=50, file_size=10.0,
                bandwidth=10.0, latency=1.0, keep_trace=True):
    topo = Topology()
    topo.add_node("fs")
    topo.add_node("site")
    topo.add_link("fs", "site", bandwidth=bandwidth, latency=latency)
    net = FlowNetwork(env, topo)
    catalog = FileCatalog(num_files, default_size=file_size)
    file_server = FileServer(env, net, "fs", catalog)
    storage = SiteStorage(capacity)
    trace = TraceBus(keep=keep_trace)
    server = DataServer(env, 0, "site", storage, file_server, trace)
    return server, storage, file_server, trace


def test_batch_fetches_missing_files(env):
    server, storage, file_server, _ = make_server(env)
    request = server.submit([1, 2, 3], "w")
    env.run_until_event(request.done)
    assert request.done.value is True
    assert request.state == DONE
    assert request.transfers == 3
    for fid in (1, 2, 3):
        assert fid in storage
        assert storage.is_pinned(fid)
    # 3 sequential transfers: each latency 1 + 10/10 = 2s
    assert env.now == pytest.approx(6.0)


def test_batch_reuses_resident_files(env):
    server, storage, file_server, _ = make_server(env)
    storage.insert(1)
    storage.insert(2)
    request = server.submit([1, 2, 3], "w")
    env.run_until_event(request.done)
    assert request.transfers == 1
    assert file_server.transfers_served == 1


def test_requests_served_one_by_one(env):
    server, storage, _, trace = make_server(env)
    first = server.submit([1], "w1")
    second = server.submit([2], "w2")
    env.run_until_event(second.done)
    records = trace.of_type(BatchServed)
    assert [r.worker for r in records] == ["w1", "w2"]
    assert second.waiting_time == pytest.approx(2.0)  # waited for first
    assert first.waiting_time == 0.0


def test_release_unpins(env):
    server, storage, _, _ = make_server(env)
    request = server.submit([1, 2], "w")
    env.run_until_event(request.done)
    server.release(request)
    assert not storage.is_pinned(1)
    assert not storage.is_pinned(2)
    assert request.pinned == []


def test_touch_records_references(env):
    server, storage, _, _ = make_server(env)
    request = server.submit([1, 2], "w")
    env.run_until_event(request.done)
    assert storage.reference_count(1) == 1
    assert storage.reference_count(2) == 1


def test_cancel_queued_request(env):
    server, storage, _, _ = make_server(env)
    server.submit([1], "w1")
    second = server.submit([2], "w2")
    server.cancel(second)
    assert second.done.triggered
    assert second.done.value is False
    env.run()
    assert 2 not in storage
    assert server.stats.requests_cancelled == 1
    assert server.stats.requests_served == 1


def test_cancel_mid_service_stops_after_current_file(env):
    server, storage, file_server, _ = make_server(env)
    request = server.submit([1, 2, 3, 4], "w")

    def canceller(env):
        yield env.timeout(2.5)  # during second file's transfer
        server.cancel(request)

    env.process(canceller(env))
    env.run()
    assert request.state == CANCELLED
    # first file done; second completes (in flight); 3 and 4 skipped.
    assert file_server.transfers_served <= 2
    assert not storage.is_pinned(1)
    assert 3 not in storage and 4 not in storage


def test_cancel_done_request_releases_pins(env):
    server, storage, _, _ = make_server(env)
    request = server.submit([1], "w")
    env.run_until_event(request.done)
    server.cancel(request)
    assert not storage.is_pinned(1)
    assert request.state == CANCELLED


def test_cancel_is_idempotent(env):
    server, _, _, _ = make_server(env)
    request = server.submit([1], "w")
    server.cancel(request)
    server.cancel(request)
    env.run()
    assert request.state == CANCELLED


def test_stats_accumulate(env):
    server, _, _, _ = make_server(env)
    server.submit([1, 2], "w")
    second = server.submit([3], "w")
    env.run_until_event(second.done)
    stats = server.stats
    assert stats.requests_served == 2
    assert stats.total_transfers == 3
    assert stats.avg_transfers == pytest.approx(1.5)
    assert stats.avg_waiting_time == pytest.approx((0.0 + 4.0) / 2)
    assert stats.avg_transfer_time == pytest.approx((4.0 + 2.0) / 2)


def test_file_transfer_trace_records(env):
    server, _, _, trace = make_server(env)
    request = server.submit([1, 2], "w")
    env.run_until_event(request.done)
    records = trace.of_type(FileTransferred)
    assert [r.file_id for r in records] == [1, 2]
    assert all(r.site == 0 for r in records)
    assert all(r.duration == pytest.approx(2.0) for r in records)


def test_batch_served_record_fields(env):
    server, _, _, trace = make_server(env)
    request = server.submit([1, 2], "w9")
    env.run_until_event(request.done)
    record = trace.of_type(BatchServed)[0]
    assert record.worker == "w9"
    assert record.num_files == 2
    assert record.num_transfers == 2
    assert not record.cancelled


def test_refetch_after_eviction(env):
    """A file evicted between two batches is transferred again."""
    server, storage, file_server, _ = make_server(env, capacity=2)
    first = server.submit([1, 2], "w")
    env.run_until_event(first.done)
    server.release(first)
    second = server.submit([3, 4], "w")
    env.run_until_event(second.done)
    server.release(second)
    third = server.submit([1], "w")
    env.run_until_event(third.done)
    assert file_server.transfers_served == 5  # 1 refetched
