"""Parallel data-server service with in-flight deduplication."""

import pytest

from repro.analysis.trace import BatchServed, FileTransferred, TraceBus
from repro.grid.data_server import DataServer
from repro.grid.file_server import FileServer
from repro.grid.files import FileCatalog
from repro.grid.storage import SiteStorage
from repro.net import FlowNetwork, Topology


def make_server(env, parallelism, capacity=100, bandwidth=10.0,
                latency=1.0, file_size=10.0):
    topo = Topology()
    topo.add_node("fs")
    topo.add_node("site")
    topo.add_link("fs", "site", bandwidth=bandwidth, latency=latency)
    net = FlowNetwork(env, topo)
    catalog = FileCatalog(100, default_size=file_size)
    file_server = FileServer(env, net, "fs", catalog)
    storage = SiteStorage(capacity)
    trace = TraceBus()
    server = DataServer(env, 0, "site", storage, file_server, trace,
                        parallelism=parallelism)
    return server, storage, file_server, trace


def test_parallelism_validation(env):
    with pytest.raises(ValueError):
        make_server(env, parallelism=0)


def test_parallel_batches_overlap_in_time(env):
    """With 2 lanes, two disjoint batches are served concurrently."""
    server, _storage, _fs, _trace = make_server(env, parallelism=2)
    first = server.submit([1, 2], "w1")
    second = server.submit([3, 4], "w2")
    env.run_until_event(second.done)
    # serial would give second a 4s wait; parallel serves immediately
    assert second.waiting_time == pytest.approx(0.0)
    assert first.done.triggered


def test_serial_keeps_fifo_waiting(env):
    server, _storage, _fs, _trace = make_server(env, parallelism=1)
    server.submit([1, 2], "w1")
    second = server.submit([3, 4], "w2")
    env.run_until_event(second.done)
    assert second.waiting_time > 0.0


def test_inflight_dedup_single_transfer(env):
    """Two concurrent batches needing the same file share one fetch."""
    server, storage, file_server, trace = make_server(env, parallelism=2)
    first = server.submit([1], "w1")
    second = server.submit([1], "w2")
    env.run_until_event(first.done)
    env.run_until_event(second.done)
    assert file_server.transfers_served == 1
    assert len(trace.of_type(FileTransferred)) == 1
    assert storage.is_pinned(1)
    # both requests pinned it once each
    server.release(first)
    assert storage.is_pinned(1)
    server.release(second)
    assert not storage.is_pinned(1)


def test_pins_always_resident_under_tight_capacity(env):
    """Under parallel service with a tight cache, a pinned file is
    always genuinely resident (the acquire loop refetches instead of
    pinning a ghost)."""
    server, storage, file_server, _trace = make_server(env, parallelism=2,
                                                       capacity=4)
    first = server.submit([1, 2], "w1")
    second = server.submit([3, 1], "w2")
    env.run_until_event(first.done)
    env.run_until_event(second.done)
    # every pinned file is genuinely resident
    for request in (first, second):
        for fid in request.pinned:
            assert fid in storage


def test_parallel_cancellation_rolls_back(env):
    server, storage, _fs, _trace = make_server(env, parallelism=2)
    first = server.submit([1, 2, 3, 4], "w1")

    def canceller(env):
        yield env.timeout(2.5)
        server.cancel(first)

    env.process(canceller(env))
    env.run()
    assert not any(storage.is_pinned(fid)
                   for fid in storage.resident_files)


def test_parallel_stats_count_all_batches(env):
    server, _storage, _fs, trace = make_server(env, parallelism=3)
    requests = [server.submit([i], f"w{i}") for i in range(1, 4)]
    for request in requests:
        env.run_until_event(request.done)
    assert server.stats.requests_served == 3
    assert len(trace.of_type(BatchServed)) == 3
