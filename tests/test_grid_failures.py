"""Worker failure injection: tasks still complete exactly once."""

import random

import pytest

from repro.analysis.trace import TaskCancelled, TaskCompleted, TraceBus
from repro.core.registry import create_scheduler
from repro.grid.failures import WorkerFailure, WorkerFailureInjector

from conftest import make_grid, make_job


def run_with_failures(env, scheduler_name, mtbf=50.0, repair=10.0,
                      num_tasks=12, seed=3):
    job = make_job([{i, i + 1, i + 2} for i in range(num_tasks)],
                   flops=2e9 * 20)
    trace = TraceBus()
    grid = make_grid(env, job, trace=trace, num_sites=2,
                     workers_per_site=2, speed_mflops=1000.0)
    scheduler = create_scheduler(scheduler_name, job, random.Random(seed))
    grid.attach_scheduler(scheduler)
    injector = WorkerFailureInjector(grid, mtbf=mtbf, repair_time=repair,
                                     rng=random.Random(seed))
    result = grid.run()
    return job, trace, injector, result


@pytest.mark.parametrize("scheduler_name",
                         ["rest", "combined.2", "workqueue",
                          "storage-affinity"])
def test_all_tasks_complete_despite_failures(env, scheduler_name):
    job, trace, injector, result = run_with_failures(env, scheduler_name)
    completed = [r.task_id for r in trace.of_type(TaskCompleted)]
    assert sorted(set(completed)) == [t.task_id for t in job]
    assert injector.failures > 0, "test must actually inject failures"


def test_cancelled_count_includes_failures(env):
    _job, trace, injector, result = run_with_failures(env, "rest")
    assert trace.count(TaskCancelled) >= injector.failures


def test_failure_cause_carries_repair_time():
    failure = WorkerFailure(repair_time=12.5)
    assert failure.repair_time == 12.5


def test_injector_validation(env, tiny_job):
    grid = make_grid(env, tiny_job)
    grid.attach_scheduler(create_scheduler("rest", tiny_job))
    with pytest.raises(ValueError):
        WorkerFailureInjector(grid, mtbf=0.0, repair_time=1.0,
                              rng=random.Random(0))
    with pytest.raises(ValueError):
        WorkerFailureInjector(grid, mtbf=1.0, repair_time=-1.0,
                              rng=random.Random(0))


def test_idle_workers_do_not_fail(env, tiny_job):
    """With MTBF far above the makespan, attempts mostly miss."""
    grid = make_grid(env, tiny_job, num_sites=1)
    scheduler = create_scheduler("rest", tiny_job)
    grid.attach_scheduler(scheduler)
    injector = WorkerFailureInjector(grid, mtbf=1.0, repair_time=0.0,
                                     rng=random.Random(1))
    grid.run()
    # attempts happened, and every task still completed exactly once
    assert injector.failures + injector.misses > 0
    assert scheduler.tasks_remaining == 0


def test_repair_time_delays_worker(env):
    """A failed worker stays idle for the repair duration."""
    job = make_job([{0}, {1}], flops=1e9 * 1000)  # long compute
    trace = TraceBus()
    grid = make_grid(env, job, trace=trace, num_sites=1,
                     speed_mflops=1000.0)
    scheduler = create_scheduler("workqueue", job)
    grid.attach_scheduler(scheduler)
    worker = grid.workers[0]

    downtime = {}

    def killer(env):
        from repro.analysis.trace import TaskStarted
        while not trace.of_type(TaskStarted):
            yield env.timeout(1.0)
        worker.fail(repair_time=500.0)
        downtime["failed_at"] = env.now

    env.process(killer(env))
    grid.run()
    # the second start (retry after failure) happens >= 500s later
    cancel_time = trace.of_type(TaskCancelled)[0].time
    later_starts = [r.time for r in trace.of_type(TaskCompleted)]
    assert min(later_starts) >= cancel_time + 500.0
