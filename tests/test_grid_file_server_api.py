"""FileServer accounting and the GridScheduler contract."""

import pytest

from repro.grid.file_server import FileServer
from repro.grid.files import FileCatalog
from repro.grid.scheduler_api import GridScheduler
from repro.net import FlowNetwork, Topology


def make_file_server(env, num_files=10, size=100.0):
    topo = Topology()
    topo.add_node("fs")
    topo.add_node("dst")
    topo.add_link("fs", "dst", bandwidth=50.0, latency=0.1)
    net = FlowNetwork(env, topo)
    catalog = FileCatalog(num_files, default_size=size)
    return FileServer(env, net, "fs", catalog), net


def test_fetch_counts_and_bytes(env):
    server, _net = make_file_server(env)
    server.fetch("dst", 1)
    server.fetch("dst", 2)
    env.run()
    assert server.transfers_served == 2
    assert server.bytes_served == pytest.approx(200.0)


def test_fetch_unknown_file_rejected(env):
    server, _net = make_file_server(env, num_files=3)
    with pytest.raises(KeyError):
        server.fetch("dst", 99)


def test_fetch_returns_transfer_event(env):
    server, _net = make_file_server(env)
    event = server.fetch("dst", 0)
    env.run()
    assert event.processed and event.ok
    stats = event.value
    assert stats.size == 100.0
    assert stats.src == "fs" and stats.dst == "dst"


def test_fetch_duration_matches_link(env):
    server, _net = make_file_server(env)  # 100 B at 50 B/s + 0.1 lat
    event = server.fetch("dst", 0)
    env.run()
    assert event.value.finished_at == pytest.approx(2.1)


def test_grid_scheduler_is_abstract():
    with pytest.raises(TypeError):
        GridScheduler()


def test_base_scheduler_requires_bind(tiny_job):
    from repro.core.base import BaseScheduler

    class Dummy(BaseScheduler):
        def next_task(self, worker):  # pragma: no cover
            raise NotImplementedError

    scheduler = Dummy(tiny_job)
    with pytest.raises(RuntimeError):
        scheduler.job_done


def test_base_scheduler_rejects_double_bind(env, tiny_job):
    from repro.core.workqueue import WorkqueueScheduler
    from conftest import make_grid
    grid = make_grid(env, tiny_job)
    scheduler = WorkqueueScheduler(tiny_job)
    grid.attach_scheduler(scheduler)
    with pytest.raises(RuntimeError):
        scheduler.bind(grid)


def test_empty_job_is_immediately_done(env):
    from repro.core.workqueue import WorkqueueScheduler
    from repro.grid.files import FileCatalog
    from repro.grid.job import Job
    from conftest import make_grid
    job = Job([], FileCatalog(1))
    grid = make_grid(env, job)
    scheduler = WorkqueueScheduler(job)
    grid.attach_scheduler(scheduler)
    result = grid.run()
    assert scheduler.tasks_remaining == 0
    assert result.tasks_completed == 0
