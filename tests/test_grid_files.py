"""FileCatalog."""

import pytest

from repro.grid import FileCatalog, MB


def test_len_and_contains():
    catalog = FileCatalog(10)
    assert len(catalog) == 10
    assert 0 in catalog and 9 in catalog
    assert 10 not in catalog and -1 not in catalog


def test_default_size():
    catalog = FileCatalog(3, default_size=5 * MB)
    assert catalog.size(0) == 5 * MB
    assert catalog.default_size == 5 * MB


def test_size_overrides():
    catalog = FileCatalog(3, default_size=100.0, sizes={1: 250.0})
    assert catalog.size(0) == 100.0
    assert catalog.size(1) == 250.0


def test_out_of_range_size_raises():
    catalog = FileCatalog(3)
    with pytest.raises(KeyError):
        catalog.size(3)


def test_override_out_of_range_rejected():
    with pytest.raises(KeyError):
        FileCatalog(3, sizes={7: 10.0})


def test_nonpositive_sizes_rejected():
    with pytest.raises(ValueError):
        FileCatalog(3, default_size=0)
    with pytest.raises(ValueError):
        FileCatalog(3, sizes={0: -5.0})


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        FileCatalog(-1)


def test_total_bytes():
    catalog = FileCatalog(5, default_size=10.0, sizes={2: 100.0})
    assert catalog.total_bytes([0, 2, 4]) == 120.0
    assert catalog.total_bytes([]) == 0.0
