"""Task and Job semantics."""

import pytest

from repro.grid import FileCatalog, Job, Task

from conftest import make_job


def test_task_num_files():
    task = Task(task_id=0, files=frozenset({1, 2, 3}))
    assert task.num_files == 3


def test_task_requires_files():
    with pytest.raises(ValueError):
        Task(task_id=0, files=frozenset())


def test_task_negative_flops_rejected():
    with pytest.raises(ValueError):
        Task(task_id=0, files=frozenset({0}), flops=-1.0)


def test_job_iteration_and_lookup(tiny_job):
    assert len(tiny_job) == 4
    assert [t.task_id for t in tiny_job] == [0, 1, 2, 3]
    assert tiny_job[2].files == frozenset({2, 3, 4})


def test_job_duplicate_ids_rejected():
    catalog = FileCatalog(3)
    tasks = [Task(0, frozenset({0})), Task(0, frozenset({1}))]
    with pytest.raises(ValueError):
        Job(tasks, catalog)


def test_job_unknown_file_rejected():
    catalog = FileCatalog(2)
    with pytest.raises(ValueError):
        Job([Task(0, frozenset({5}))], catalog)


def test_referenced_files(tiny_job):
    assert tiny_job.referenced_files == frozenset(range(6))


def test_reference_counts(tiny_job):
    counts = tiny_job.reference_counts()
    # files: 0:{t0} 1:{t0,t1} 2:{t0..t2} 3:{t1..t3} 4:{t2,t3} 5:{t3}
    assert counts == {0: 1, 1: 2, 2: 3, 3: 3, 4: 2, 5: 1}


def test_make_job_helper_sizes():
    job = make_job([{0, 1}, {1, 2}], file_size=77.0)
    assert job.catalog.size(0) == 77.0
    assert len(job.catalog) == 3


def test_job_preserves_task_order():
    catalog = FileCatalog(4)
    tasks = [Task(3, frozenset({0})), Task(1, frozenset({1}))]
    job = Job(tasks, catalog)
    assert [t.task_id for t in job] == [3, 1]
    assert job[1].task_id == 1
