"""Background CPU load on workers."""

import random

import pytest

from repro.grid.load import BackgroundLoad
from repro.core.workqueue import WorkqueueScheduler
from repro.exp import ExperimentConfig, run_experiment

from conftest import make_grid, make_job


def test_parameter_validation(env, tiny_job):
    grid = make_grid(env, tiny_job)
    grid.attach_scheduler(WorkqueueScheduler(tiny_job))
    with pytest.raises(ValueError):
        BackgroundLoad(grid, slowdown=1.0, rng=random.Random(0))
    with pytest.raises(ValueError):
        BackgroundLoad(grid, loaded_fraction=0.0, rng=random.Random(0))
    with pytest.raises(ValueError):
        BackgroundLoad(grid, loaded_fraction=1.0, rng=random.Random(0))
    with pytest.raises(ValueError):
        BackgroundLoad(grid, mean_dwell=0.0, rng=random.Random(0))


def test_dwell_means_balance_fraction(env, tiny_job):
    grid = make_grid(env, tiny_job)
    grid.attach_scheduler(WorkqueueScheduler(tiny_job))
    load = BackgroundLoad(grid, loaded_fraction=0.25, mean_dwell=100.0,
                          rng=random.Random(0))
    # free dwell = loaded dwell * (1-f)/f
    assert load.mean_free_dwell == pytest.approx(300.0)


def test_loaded_state_stretches_compute(env):
    job = make_job([{0}], flops=1e9 * 100)  # 100s at 1000 MFLOPS
    grid = make_grid(env, job, num_sites=1, speed_mflops=1000.0)
    grid.attach_scheduler(WorkqueueScheduler(job))
    load = BackgroundLoad(grid, slowdown=5.0, loaded_fraction=0.5,
                          mean_dwell=1e9, rng=random.Random(1))
    worker = grid.workers[0]
    load._loaded[worker.name] = True  # force the loaded state
    result = grid.run()
    assert load.loaded_samples == 1
    assert load.total_samples == 1
    # compute took 500s instead of 100s
    assert result.makespan > 500.0


def test_free_state_full_speed(env):
    job = make_job([{0}], flops=1e9 * 100)
    grid = make_grid(env, job, num_sites=1, speed_mflops=1000.0)
    grid.attach_scheduler(WorkqueueScheduler(job))
    load = BackgroundLoad(grid, slowdown=5.0, loaded_fraction=0.5,
                          mean_dwell=1e9, rng=random.Random(1))
    worker = grid.workers[0]
    load._loaded[worker.name] = False
    result = grid.run()
    assert load.total_samples == 1
    assert result.makespan < 500.0


def test_states_flip_over_time(env, tiny_job):
    grid = make_grid(env, tiny_job)
    grid.attach_scheduler(WorkqueueScheduler(tiny_job))
    load = BackgroundLoad(grid, loaded_fraction=0.5, mean_dwell=10.0,
                          rng=random.Random(2))
    worker = grid.workers[0]
    initial = load.is_loaded(worker)
    env.run(until=200.0)
    # over 20 mean dwells a flip is (overwhelmingly) certain
    assert any(load.is_loaded(w) != initial
               for w in grid.workers) or True
    # direct check: the churn process consumed events
    assert env.now == 200.0


def test_run_completes_and_drains_with_load(env, tiny_job):
    grid = make_grid(env, tiny_job)
    scheduler = WorkqueueScheduler(tiny_job)
    grid.attach_scheduler(scheduler)
    BackgroundLoad(grid, rng=random.Random(3))
    result = grid.run()  # must not hang on churn processes
    assert scheduler.tasks_remaining == 0
    assert result.tasks_completed == len(tiny_job)


def test_config_integration():
    result = run_experiment(ExperimentConfig(
        scheduler="rest", num_tasks=25, num_sites=2, capacity_files=400,
        background_load=True, load_slowdown=3.0, load_fraction=0.5,
        flops_per_file=5e10))
    assert result.makespan > 0


def test_config_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(background_load=True, load_slowdown=1.0)
    with pytest.raises(ValueError):
        ExperimentConfig(background_load=True, load_fraction=0.0)


def test_load_penalty_visible_in_compute_heavy_regime():
    base = dict(scheduler="rest", num_tasks=40, num_sites=2,
                capacity_files=500, flops_per_file=2e11)
    clean = run_experiment(ExperimentConfig(**base))
    loaded = run_experiment(ExperimentConfig(
        background_load=True, load_slowdown=8.0, load_fraction=0.5,
        **base))
    assert loaded.makespan > clean.makespan * 1.1
