"""SiteStorage: LRU, pinning, reference counters, listeners."""

import pytest

from repro.grid import SiteStorage, StorageFullError


def test_insert_and_contains():
    storage = SiteStorage(3)
    storage.insert(1)
    assert 1 in storage
    assert 2 not in storage
    assert len(storage) == 1


def test_capacity_validation():
    with pytest.raises(ValueError):
        SiteStorage(0)


def test_lru_eviction_order():
    storage = SiteStorage(2)
    storage.insert(1)
    storage.insert(2)
    evicted = storage.insert(3)
    assert evicted == 1
    assert storage.resident_files == (2, 3)
    assert storage.evictions == 1


def test_reinsert_refreshes_lru():
    storage = SiteStorage(2)
    storage.insert(1)
    storage.insert(2)
    storage.insert(1)  # refresh 1
    assert storage.insert(3) == 2


def test_touch_refreshes_lru_and_counts():
    storage = SiteStorage(2)
    storage.insert(1)
    storage.insert(2)
    storage.touch(1)
    assert storage.insert(3) == 2
    assert storage.reference_count(1) == 1
    assert storage.reference_count(2) == 0


def test_touch_nonresident_still_counts():
    storage = SiteStorage(2)
    storage.touch(9)
    assert storage.reference_count(9) == 1
    assert 9 not in storage


def test_reference_counts_survive_eviction():
    storage = SiteStorage(1)
    storage.insert(1)
    storage.touch(1)
    storage.insert(2)  # evicts 1
    assert 1 not in storage
    assert storage.reference_count(1) == 1


def test_pin_blocks_eviction():
    storage = SiteStorage(2)
    storage.insert(1)
    storage.insert(2)
    storage.pin(1)
    assert storage.insert(3) == 2  # 1 is protected despite being LRU
    storage.unpin(1)
    assert storage.insert(4) == 1


def test_pin_nonresident_raises():
    storage = SiteStorage(2)
    with pytest.raises(KeyError):
        storage.pin(5)


def test_unpin_without_pin_raises():
    storage = SiteStorage(2)
    storage.insert(1)
    with pytest.raises(RuntimeError):
        storage.unpin(1)


def test_pins_are_counted():
    storage = SiteStorage(1)
    storage.insert(1)
    storage.pin(1)
    storage.pin(1)
    storage.unpin(1)
    assert storage.is_pinned(1)
    storage.unpin(1)
    assert not storage.is_pinned(1)


def test_all_pinned_raises_storage_full():
    storage = SiteStorage(2)
    storage.insert(1)
    storage.insert(2)
    storage.pin(1)
    storage.pin(2)
    with pytest.raises(StorageFullError):
        storage.insert(3)


def test_eviction_skips_pinned_lru():
    storage = SiteStorage(3)
    for fid in (1, 2, 3):
        storage.insert(fid)
    storage.pin(1)
    storage.pin(2)
    assert storage.insert(4) == 3


def test_overlap_and_missing():
    storage = SiteStorage(5)
    for fid in (1, 2, 3):
        storage.insert(fid)
    assert storage.overlap({2, 3, 4}) == 2
    assert storage.missing([1, 4, 5]) == [4, 5]
    assert storage.free_slots == 2


def test_insert_listener_fires():
    storage = SiteStorage(2)
    seen = []
    storage.on_insert(seen.append)
    storage.insert(7)
    storage.insert(7)  # refresh: no second event
    assert seen == [7]


def test_evict_listener_fires():
    storage = SiteStorage(1)
    evicted = []
    storage.on_evict(evicted.append)
    storage.insert(1)
    storage.insert(2)
    assert evicted == [1]


def test_touch_listener_fires():
    storage = SiteStorage(1)
    touched = []
    storage.on_touch(touched.append)
    storage.insert(1)
    storage.touch(1)
    storage.touch(1)
    assert touched == [1, 1]


def test_unpin_all():
    storage = SiteStorage(3)
    for fid in (1, 2):
        storage.insert(fid)
        storage.pin(fid)
    storage.unpin_all([1, 2])
    assert not storage.is_pinned(1) and not storage.is_pinned(2)
