"""Worker + Grid end-to-end behaviour with a trivial FIFO scheduler."""

import pytest

from repro.analysis.trace import (TaskCancelled, TaskCompleted, TaskStarted,
                                  TraceBus)
from repro.core.workqueue import WorkqueueScheduler
from repro.grid.cluster import Grid

from conftest import make_grid, make_job


def run_grid(env, job, trace=None, **kwargs):
    grid = make_grid(env, job, trace=trace, **kwargs)
    scheduler = WorkqueueScheduler(job)
    grid.attach_scheduler(scheduler)
    return grid, grid.run()


def test_all_tasks_complete(env, tiny_job):
    trace = TraceBus()
    grid, result = run_grid(env, tiny_job, trace=trace)
    completed = {r.task_id for r in trace.of_type(TaskCompleted)}
    assert completed == {0, 1, 2, 3}
    assert result.tasks_completed == 4


def test_each_task_completes_exactly_once(env, tiny_job):
    trace = TraceBus()
    _grid, _result = run_grid(env, tiny_job, trace=trace)
    ids = [r.task_id for r in trace.of_type(TaskCompleted)]
    assert sorted(ids) == sorted(set(ids))


def test_makespan_equals_last_completion(env, tiny_job):
    trace = TraceBus()
    _grid, result = run_grid(env, tiny_job, trace=trace)
    last = max(r.time for r in trace.of_type(TaskCompleted))
    assert result.makespan == pytest.approx(last)


def test_task_starts_only_with_all_files_resident(env, tiny_job):
    trace = TraceBus()
    grid = make_grid(env, tiny_job, trace=trace, num_sites=2)
    scheduler = WorkqueueScheduler(tiny_job)
    grid.attach_scheduler(scheduler)

    violations = []

    def check(record):
        storage = grid.sites[record.site].storage
        task = tiny_job[record.task_id]
        if any(fid not in storage for fid in task.files):
            violations.append(record)

    trace.subscribe(TaskStarted, check)
    grid.run()
    assert violations == []


def test_compute_time_respects_speed(env):
    job = make_job([{0}], flops=5000e6)  # 5000 MFLOP
    trace = TraceBus()
    grid, _result = run_grid(env, job, trace=trace, num_sites=1,
                             speed_mflops=1000.0)
    started = trace.of_type(TaskStarted)[0].time
    completed = trace.of_type(TaskCompleted)[0].time
    assert completed - started == pytest.approx(5.0)


def test_workers_report_completions(env, tiny_job):
    grid, _result = run_grid(env, tiny_job, num_sites=2)
    total = sum(w.tasks_completed for w in grid.workers)
    assert total == len(tiny_job)


def test_file_transfer_accounting(env, tiny_job):
    grid, result = run_grid(env, tiny_job, num_sites=1)
    # single site: every distinct file transferred exactly once
    assert result.file_transfers == 6
    assert result.bytes_transferred == pytest.approx(6 * 1024.0)


def test_zero_flops_tasks_still_complete(env):
    job = make_job([{0, 1}, {1, 2}], flops=0.0)
    _grid, result = run_grid(env, job, num_sites=1)
    assert result.tasks_completed == 2


def test_grid_requires_scheduler():
    from repro.sim import Environment
    env = Environment()
    job = make_job([{0}])
    grid = make_grid(env, job)
    with pytest.raises(RuntimeError):
        grid.run()


def test_double_attach_rejected(env, tiny_job):
    grid = make_grid(env, tiny_job)
    grid.attach_scheduler(WorkqueueScheduler(tiny_job))
    with pytest.raises(RuntimeError):
        grid.attach_scheduler(WorkqueueScheduler(tiny_job))


def test_too_many_sites_rejected(env, tiny_job):
    from repro.net import TiersParams, generate_tiers
    topo = generate_tiers(TiersParams(num_sites=2), seed=1)
    with pytest.raises(ValueError):
        Grid(env, topo, tiny_job, 100, [[100.0]] * 3)


def test_worker_speed_validation(env, tiny_job):
    with pytest.raises(ValueError):
        make_grid(env, tiny_job, speed_mflops=0.0)


def test_cancel_task_interrupts_running_worker(env):
    """cancel_task mid-compute aborts and emits TaskCancelled."""
    job = make_job([{0}], flops=1e9 * 100)
    trace = TraceBus()
    grid = make_grid(env, job, trace=trace, num_sites=1,
                     speed_mflops=1000.0)

    class OneShot(WorkqueueScheduler):
        pass

    scheduler = OneShot(job)
    grid.attach_scheduler(scheduler)

    def killer(env):
        # wait until compute surely started, then cancel
        while not trace.of_type(TaskStarted):
            yield env.timeout(1.0)
        worker = grid.workers[0]
        assert worker.cancel_task(0)

    env.process(killer(env))
    # The task never completes: run until queue drains.
    env.run()
    assert trace.count(TaskCancelled) == 1
    assert grid.workers[0].tasks_cancelled == 1
    # Cancellation released every pin.
    storage = grid.sites[0].storage
    assert not any(storage.is_pinned(fid)
                   for fid in storage.resident_files)


def test_cancel_task_wrong_id_is_noop(env):
    job = make_job([{0}], flops=1e9 * 100)
    trace = TraceBus()
    grid = make_grid(env, job, trace=trace, num_sites=1)
    grid.attach_scheduler(WorkqueueScheduler(job))

    def killer(env):
        while not trace.of_type(TaskStarted):
            yield env.timeout(1.0)
        assert not grid.workers[0].cancel_task(999)

    env.process(killer(env))
    env.run()
    assert trace.count(TaskCompleted) == 1


def test_worker_names_are_unique(env, tiny_job):
    grid = make_grid(env, tiny_job, num_sites=2, workers_per_site=3)
    names = [w.name for w in grid.workers]
    assert len(names) == len(set(names)) == 6
