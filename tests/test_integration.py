"""Cross-module integration: every scheduler upholds the system
invariants on a realistic (small Coadd) workload, and the paper's
headline qualitative results hold at test scale."""

import pytest

from repro.analysis.trace import (FileTransferred, TaskCompleted,
                                  TaskStarted)
from repro.core.registry import available_schedulers
from repro.exp import ExperimentConfig, run_experiment
from repro.exp.runner import build_job

ALL_SCHEDULERS = available_schedulers() + ["wc:rest:4"]


def config(**overrides):
    defaults = dict(num_tasks=60, num_sites=3, capacity_files=600,
                    keep_trace=True)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture(scope="module")
def results():
    """One run per scheduler, shared across the invariant tests."""
    out = {}
    for name in ALL_SCHEDULERS:
        out[name] = run_experiment(config(scheduler=name))
    return out


@pytest.mark.parametrize("name", ALL_SCHEDULERS)
def test_every_task_completes_exactly_once(results, name):
    result = results[name]
    completions = result.trace.of_type(TaskCompleted)
    ids = sorted({r.task_id for r in completions})
    assert ids == list(range(60))
    # duplicates only possible transiently for replicating schedulers;
    # the scheduler counts each task once regardless
    assert result.makespan > 0


@pytest.mark.parametrize("name", ALL_SCHEDULERS)
def test_makespan_equals_last_completion(results, name):
    result = results[name]
    last = max(r.time for r in result.trace.of_type(TaskCompleted))
    assert result.makespan == pytest.approx(last)


@pytest.mark.parametrize("name", ALL_SCHEDULERS)
def test_transfer_counter_matches_trace(results, name):
    result = results[name]
    traced = len(result.trace.of_type(FileTransferred))
    assert result.file_transfers == traced + result.data_replications


@pytest.mark.parametrize("name", ALL_SCHEDULERS)
def test_starts_have_matching_completions(results, name):
    result = results[name]
    started = {(r.worker, r.task_id)
               for r in result.trace.of_type(TaskStarted)}
    completed = {(r.worker, r.task_id)
                 for r in result.trace.of_type(TaskCompleted)}
    # every completion was started on that same worker
    assert completed <= started


@pytest.mark.parametrize("name", ALL_SCHEDULERS)
def test_every_used_file_transferred_at_least_once(results, name):
    """A file cannot be consumed without ever arriving somewhere."""
    result = results[name]
    job = build_job(config(scheduler=name))
    used = {fid for task in job for fid in task.files}
    arrived = {r.file_id for r in result.trace.of_type(FileTransferred)}
    assert used <= arrived


def test_data_aware_beats_data_blind(results):
    """The paper's core claim at small scale: locality-aware scheduling
    transfers far less and finishes faster than FIFO."""
    # at 60 tasks the reachable gap is modest; the bench-scale run shows
    # the paper's ~3x factor
    assert results["rest"].file_transfers \
        < 0.8 * results["workqueue"].file_transfers
    assert results["rest"].makespan < results["workqueue"].makespan


def test_rest_beats_overlap_on_transfers(results):
    """Metrics that minimize transfers beat pure overlap counting."""
    assert results["rest"].file_transfers \
        <= results["overlap"].file_transfers


def test_storage_pins_all_released(results):
    # via a fresh run we can inspect grid internals
    from repro.exp.runner import build_grid
    from repro.core.registry import create_scheduler
    import random
    cfg = config(scheduler="rest")
    job = build_job(cfg)
    grid = build_grid(cfg, job)
    grid.attach_scheduler(create_scheduler("rest", job, random.Random(0)))
    grid.run()
    for site in grid.sites:
        storage = site.storage
        assert not any(storage.is_pinned(fid)
                       for fid in storage.resident_files)


@pytest.mark.parametrize("name", ["rest", "combined.2", "storage-affinity"])
def test_deterministic_replay(name):
    a = run_experiment(config(scheduler=name))
    b = run_experiment(config(scheduler=name))
    assert a.makespan == b.makespan
    assert a.file_transfers == b.file_transfers
    assert [r.task_id for r in a.trace.of_type(TaskCompleted)] \
        == [r.task_id for r in b.trace.of_type(TaskCompleted)]


def test_storage_never_exceeds_capacity():
    from repro.exp.runner import build_grid
    from repro.core.registry import create_scheduler
    import random
    cfg = config(scheduler="rest", capacity_files=120)
    job = build_job(cfg)
    grid = build_grid(cfg, job)
    grid.attach_scheduler(create_scheduler("rest", job, random.Random(0)))
    violations = []

    def check(record):
        for site in grid.sites:
            if len(site.storage) > site.storage.capacity_files:
                violations.append(record)

    grid.trace.subscribe(FileTransferred, check)
    grid.run()
    assert violations == []
