"""Edge cases across smaller surfaces: report formatting, worker
accounting, figures scaling helpers, config catalog helpers."""


from repro.exp import ExperimentConfig
from repro.exp.figures import BENCH, PAPER, SMALL, _workers_capacity
from repro.exp.report import format_series, format_sweep_table

from conftest import make_grid, make_job


# -- figures helpers ---------------------------------------------------------

def test_scales_are_ordered():
    assert SMALL.num_tasks < BENCH.num_tasks < PAPER.num_tasks
    assert len(PAPER.topology_seeds) == 5  # the paper's protocol


def test_paper_scale_matches_table1():
    config = PAPER.base_config()
    assert config.num_tasks == 6000
    assert config.capacity_files == 6000
    assert PAPER.capacities == (3000, 6000, 15000, 30000)
    assert PAPER.file_sizes_mb == (5.0, 25.0, 50.0)


def test_workers_capacity_floor():
    # must fit (workers+1) concurrent pinned batches of ~101-130 files
    capacity = _workers_capacity(SMALL, 10)
    assert capacity >= 11 * 130


def test_base_config_overrides():
    config = BENCH.base_config(scheduler="rest", workers_per_site=3)
    assert config.scheduler == "rest"
    assert config.workers_per_site == 3
    assert config.num_tasks == BENCH.num_tasks


# -- report edge cases ----------------------------------------------------

def test_format_series_without_label():
    text = format_series([(1, 2.0)])
    assert text == "1 2.0"


def test_format_sweep_table_custom_format():
    from repro.exp.sweep import run_sweep
    sweep = run_sweep(
        ExperimentConfig(num_tasks=15, num_sites=2, capacity_files=400),
        "capacity_files", (400,), ("rest",), topology_seeds=(0,))
    text = format_sweep_table(sweep, metric="file_transfers",
                              value_format="{:>12.0f}")
    assert "." not in text.splitlines()[-1].split()[-1]


# -- worker accounting --------------------------------------------------------

def test_worker_busy_time_counts_fetch_and_compute(env):
    from repro.core.workqueue import WorkqueueScheduler
    job = make_job([{0, 1}], flops=1e9 * 50)
    grid = make_grid(env, job, num_sites=1, speed_mflops=1000.0)
    grid.attach_scheduler(WorkqueueScheduler(job))
    grid.run()
    worker = grid.workers[0]
    assert worker.tasks_completed == 1
    assert worker.busy_time > 50.0  # compute alone is 50s


def test_worker_repr_and_site_repr(env, tiny_job):
    grid = make_grid(env, tiny_job, num_sites=1)
    assert "Site 0" in repr(grid.sites[0])


# -- config helpers ------------------------------------------------------------

def test_coadd_params_pass_through():
    config = ExperimentConfig(num_tasks=77, file_size_mb=5.0,
                              flops_per_file=123.0)
    params = config.coadd_params()
    assert params.num_tasks == 77
    assert params.file_size == 5.0 * 1024 * 1024
    assert params.flops_per_file == 123.0


def test_tiers_params_default_sites():
    config = ExperimentConfig(num_sites=17)
    assert config.tiers_params().num_sites == 17


def test_custom_tiers_accepted_when_big_enough():
    from repro.net import TiersParams
    config = ExperimentConfig(num_sites=4,
                              tiers=TiersParams(num_sites=9))
    assert config.tiers_params().num_sites == 9


# -- control message accounting -----------------------------------------------

def test_control_messages_ride_the_network(env):
    """Each task costs >= 3 control messages (request, delivery,
    completion); those bytes show up in the flow network's totals but
    not in the file server's."""
    from repro.core.workqueue import WorkqueueScheduler
    from repro.grid.worker import CONTROL_MESSAGE_BYTES
    job = make_job([{0}, {1}])
    grid = make_grid(env, job, num_sites=1)
    grid.attach_scheduler(WorkqueueScheduler(job))
    result = grid.run()
    file_bytes = result.bytes_transferred
    network_bytes = grid.network.bytes_transferred
    overhead = network_bytes - file_bytes
    assert overhead >= 2 * 3 * CONTROL_MESSAGE_BYTES
