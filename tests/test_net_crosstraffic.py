"""Background cross-traffic injection."""

import random

import pytest

from repro.exp import ExperimentConfig, run_experiment
from repro.net import FlowNetwork, Topology
from repro.net.crosstraffic import CrossTraffic
from repro.sim import Environment


def star_topology(leaves=3):
    topo = Topology()
    topo.add_node("hub")
    names = []
    for i in range(leaves):
        name = topo.add_node(f"n{i}")
        topo.add_link("hub", name, bandwidth=10.0, latency=0.01)
        names.append(name)
    return topo, names


def test_parameter_validation():
    env = Environment()
    topo, names = star_topology()
    net = FlowNetwork(env, topo)
    with pytest.raises(ValueError):
        CrossTraffic(env, net, names[:1], 1.0, 1.0, random.Random(0))
    with pytest.raises(ValueError):
        CrossTraffic(env, net, names, 0.0, 1.0, random.Random(0))
    with pytest.raises(ValueError):
        CrossTraffic(env, net, names, 1.0, 0.0, random.Random(0))


def test_flows_injected_until_condition():
    env = Environment()
    topo, names = star_topology()
    net = FlowNetwork(env, topo)
    traffic = CrossTraffic(env, net, names, mean_interarrival=5.0,
                           mean_size=10.0, rng=random.Random(1),
                           until=lambda: env.now > 200.0)
    env.run()
    assert traffic.flows_started > 10
    assert traffic.bytes_injected > 0
    assert net.completed_transfers == traffic.flows_started


def test_generation_stops_and_queue_drains():
    env = Environment()
    topo, names = star_topology()
    net = FlowNetwork(env, topo)
    CrossTraffic(env, net, names, mean_interarrival=1.0, mean_size=5.0,
                 rng=random.Random(2), until=lambda: env.now > 50.0)
    env.run()  # must terminate (no infinite generator)
    assert net.active_flow_count == 0


def test_src_dst_always_distinct():
    env = Environment()
    topo, names = star_topology(4)
    net = FlowNetwork(env, topo)
    seen = []
    original = net.transfer

    def spy(src, dst, size):
        seen.append((src, dst))
        return original(src, dst, size)

    net.transfer = spy
    CrossTraffic(env, net, names, mean_interarrival=1.0, mean_size=5.0,
                 rng=random.Random(3), until=lambda: env.now > 30.0)
    env.run()
    assert seen
    assert all(src != dst for src, dst in seen)


def test_cross_traffic_slows_the_grid():
    base = dict(scheduler="rest", num_tasks=40, num_sites=2,
                capacity_files=500)
    quiet = run_experiment(ExperimentConfig(**base))
    noisy = run_experiment(ExperimentConfig(
        cross_traffic=True, cross_traffic_interarrival=60.0,
        cross_traffic_mean_mb=30.0, **base))
    assert noisy.makespan > quiet.makespan
    # transfers counted by the file server are unchanged (cross traffic
    # is not file-server traffic)
    assert noisy.file_transfers == pytest.approx(quiet.file_transfers,
                                                 rel=0.2)


def test_config_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(cross_traffic=True,
                         cross_traffic_interarrival=0.0)
    with pytest.raises(ValueError):
        ExperimentConfig(cross_traffic=True, cross_traffic_mean_mb=0.0)
