"""Flow network: analytic max-min fair-sharing checks."""

import pytest

from repro.net import FlowNetwork, Topology


def finish_times(env, net, transfers):
    """Run transfers (src, dst, size, start_time) -> completion times."""
    done = {}

    def starter(env, index, src, dst, size, start):
        if start:
            yield env.timeout(start)
        event = net.transfer(src, dst, size)
        event.add_callback(lambda e: done.setdefault(index, env.now))
        if False:  # pragma: no cover - make this a generator
            yield

    for index, (src, dst, size, start) in enumerate(transfers):
        env.process(starter(env, index, src, dst, size, start))
    env.run()
    return done


@pytest.fixture
def chain():
    """a --(10,1s)-- b --(5,1s)-- c"""
    topo = Topology()
    for name in "abc":
        topo.add_node(name)
    topo.add_link("a", "b", bandwidth=10.0, latency=1.0)
    topo.add_link("b", "c", bandwidth=5.0, latency=1.0)
    return topo


def test_single_flow_latency_plus_bandwidth(env, two_node_topology):
    net = FlowNetwork(env, two_node_topology)
    done = finish_times(env, net, [("a", "b", 100.0, 0.0)])
    # 1s latency + 100/10 s transfer
    assert done[0] == pytest.approx(11.0)


def test_zero_size_transfer_takes_latency_only(env, two_node_topology):
    net = FlowNetwork(env, two_node_topology)
    done = finish_times(env, net, [("a", "b", 0.0, 0.0)])
    assert done[0] == pytest.approx(1.0)
    assert net.completed_transfers == 1


def test_same_node_transfer_is_instant(env, two_node_topology):
    net = FlowNetwork(env, two_node_topology)
    done = finish_times(env, net, [("a", "a", 500.0, 0.0)])
    assert done[0] == pytest.approx(0.0)


def test_negative_size_rejected(env, two_node_topology):
    net = FlowNetwork(env, two_node_topology)
    with pytest.raises(ValueError):
        net.transfer("a", "b", -1.0)


def test_two_flows_share_link_equally(env, two_node_topology):
    net = FlowNetwork(env, two_node_topology)
    done = finish_times(env, net, [("a", "b", 50.0, 0.0),
                                   ("a", "b", 50.0, 0.0)])
    # both get 5 B/s: 1s latency + 10s
    assert done[0] == pytest.approx(11.0)
    assert done[1] == pytest.approx(11.0)


def test_flow_speeds_up_when_other_finishes(env, two_node_topology):
    net = FlowNetwork(env, two_node_topology)
    done = finish_times(env, net, [("a", "b", 100.0, 0.0),
                                   ("a", "b", 40.0, 5.0)])
    # f1 alone 1..6 (50 bytes), shares 5 B/s until f2 done at 14,
    # then finishes remaining 10 bytes at 10 B/s -> 15.
    assert done[1] == pytest.approx(14.0)
    assert done[0] == pytest.approx(15.0)


def test_bottleneck_is_narrowest_link(env, chain):
    net = FlowNetwork(env, chain)
    done = finish_times(env, net, [("a", "c", 50.0, 0.0)])
    # latency 2s + 50/5 s
    assert done[0] == pytest.approx(12.0)


def test_max_min_unequal_routes(env, chain):
    """One a->c flow (bottleneck 5) and one a->b flow share link ab.

    Max-min: flow a-c is limited to 5 by link bc; flow a-b gets the
    remaining 5 of link ab.
    """
    net = FlowNetwork(env, chain)
    done = finish_times(env, net, [("a", "c", 50.0, 0.0),
                                   ("a", "b", 50.0, 0.0)])
    assert done[0] == pytest.approx(12.0)   # 2 + 50/5
    # a->b is admitted at t=1 (shorter latency) and runs alone at 10 B/s
    # until a->c joins at t=2; then 40 bytes at its 5 B/s share -> t=10.
    assert done[1] == pytest.approx(10.0)


def test_three_flows_one_link(env, two_node_topology):
    net = FlowNetwork(env, two_node_topology)
    done = finish_times(env, net, [("a", "b", 30.0, 0.0)] * 3)
    # each 10/3 B/s: 1 + 30/(10/3) = 10s
    for index in range(3):
        assert done[index] == pytest.approx(10.0)


def test_counters_accumulate(env, two_node_topology):
    net = FlowNetwork(env, two_node_topology)
    finish_times(env, net, [("a", "b", 30.0, 0.0), ("a", "b", 20.0, 0.0)])
    assert net.completed_transfers == 2
    assert net.bytes_transferred == pytest.approx(50.0)
    assert net.active_flow_count == 0


def test_transfer_stats_fields(env, two_node_topology):
    net = FlowNetwork(env, two_node_topology)
    captured = {}
    net.transfer("a", "b", 100.0).add_callback(
        lambda e: captured.update(stats=e.value))
    env.run()
    stats = captured["stats"]
    assert stats.src == "a" and stats.dst == "b"
    assert stats.size == 100.0
    assert stats.requested_at == 0.0
    assert stats.started_at == pytest.approx(1.0)
    assert stats.finished_at == pytest.approx(11.0)
    assert stats.duration == pytest.approx(11.0)


def test_many_sequential_transfers_keep_clock_sane(env, two_node_topology):
    """Regression: float-resolution completion must never stall time."""
    net = FlowNetwork(env, two_node_topology)

    def sender(env):
        for _ in range(200):
            yield net.transfer("a", "b", 7.3)

    process = env.process(sender(env))
    env.run_until_event(process)
    assert net.completed_transfers == 200
    assert env.now == pytest.approx(200 * (1.0 + 0.73), rel=1e-6)
