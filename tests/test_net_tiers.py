"""Tiers-style topology generation."""

import pytest

from repro.net import TiersParams, generate_tiers


def test_default_generation_shape():
    grid = generate_tiers(TiersParams(num_sites=10), seed=1)
    assert grid.num_sites == 10
    assert len(grid.site_gateways) == 10
    assert grid.topology.node_kind(grid.scheduler_node) == "service"
    assert grid.topology.node_kind(grid.file_server_node) == "service"


def test_generation_is_deterministic():
    a = generate_tiers(TiersParams(num_sites=6), seed=9)
    b = generate_tiers(TiersParams(num_sites=6), seed=9)
    assert a.site_gateways == b.site_gateways
    assert [(l.a, l.b, l.bandwidth, l.latency) for l in a.topology.links] \
        == [(l.a, l.b, l.bandwidth, l.latency) for l in b.topology.links]


def test_different_seeds_differ():
    a = generate_tiers(TiersParams(num_sites=6), seed=1)
    b = generate_tiers(TiersParams(num_sites=6), seed=2)
    assert [(l.a, l.b) for l in a.topology.links] \
        != [(l.a, l.b) for l in b.topology.links] or \
        [l.bandwidth for l in a.topology.links] \
        != [l.bandwidth for l in b.topology.links]


def test_every_site_reaches_services():
    grid = generate_tiers(TiersParams(num_sites=12), seed=3)
    for gateway in grid.site_gateways:
        assert grid.topology.route(gateway, grid.file_server_node).links
        assert grid.topology.route(gateway, grid.scheduler_node).links


def test_connected_for_many_seeds():
    for seed in range(20):
        grid = generate_tiers(TiersParams(num_sites=9), seed=seed)
        assert grid.topology.is_connected()


def test_single_site():
    grid = generate_tiers(TiersParams(num_sites=1), seed=0)
    assert grid.num_sites == 1
    assert grid.topology.is_connected()


def test_bandwidth_jitter_bounds():
    params = TiersParams(num_sites=8, bandwidth_jitter=0.25)
    grid = generate_tiers(params, seed=5)
    site_links = [l for l in grid.topology.links
                  if l.a.startswith("site") or l.b.startswith("site")]
    assert site_links
    for link in site_links:
        assert params.site_bandwidth * 0.75 <= link.bandwidth \
            <= params.site_bandwidth * 1.25


def test_zero_jitter_exact_bandwidths():
    params = TiersParams(num_sites=4, bandwidth_jitter=0.0)
    grid = generate_tiers(params, seed=5)
    site_links = [l for l in grid.topology.links
                  if l.a.startswith("site") or l.b.startswith("site")]
    for link in site_links:
        assert link.bandwidth == params.site_bandwidth


def test_param_validation():
    with pytest.raises(ValueError):
        TiersParams(num_sites=0)
    with pytest.raises(ValueError):
        TiersParams(num_wan_routers=0)
    with pytest.raises(ValueError):
        TiersParams(bandwidth_jitter=1.0)


def test_site_kind_nodes_match_gateways():
    grid = generate_tiers(TiersParams(num_sites=7), seed=2)
    assert grid.topology.nodes_of_kind("site") == grid.site_gateways
