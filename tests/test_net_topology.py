"""Topology graph and routing."""

import pytest

from repro.net import Topology


def build_diamond():
    r"""a - b - d and a - c - d, with b cheaper than c."""
    topo = Topology()
    for name in "abcd":
        topo.add_node(name)
    topo.add_link("a", "b", bandwidth=10.0, latency=1.0)
    topo.add_link("b", "d", bandwidth=10.0, latency=1.0)
    topo.add_link("a", "c", bandwidth=10.0, latency=5.0)
    topo.add_link("c", "d", bandwidth=10.0, latency=5.0)
    return topo


def test_duplicate_node_rejected():
    topo = Topology()
    topo.add_node("a")
    with pytest.raises(ValueError):
        topo.add_node("a")


def test_link_to_unknown_node_rejected():
    topo = Topology()
    topo.add_node("a")
    with pytest.raises(KeyError):
        topo.add_link("a", "ghost", 1.0, 0.0)


def test_self_link_rejected():
    topo = Topology()
    topo.add_node("a")
    with pytest.raises(ValueError):
        topo.add_link("a", "a", 1.0, 0.0)


def test_nonpositive_bandwidth_rejected():
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    with pytest.raises(ValueError):
        topo.add_link("a", "b", 0.0, 0.0)


def test_negative_latency_rejected():
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    with pytest.raises(ValueError):
        topo.add_link("a", "b", 1.0, -1.0)


def test_link_other_endpoint():
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    link = topo.add_link("a", "b", 1.0, 0.5)
    assert link.other("a") == "b"
    assert link.other("b") == "a"
    with pytest.raises(ValueError):
        link.other("c")


def test_route_prefers_lower_latency():
    topo = build_diamond()
    route = topo.route("a", "d")
    assert [link.other("a") for link in route.links[:1]] == ["b"]
    assert route.latency == 2.0
    assert len(route.links) == 2


def test_route_same_node_is_empty():
    topo = build_diamond()
    route = topo.route("a", "a")
    assert route.links == ()
    assert route.latency == 0.0
    assert route.bottleneck_bandwidth == float("inf")


def test_route_unknown_node_raises():
    topo = build_diamond()
    with pytest.raises(KeyError):
        topo.route("a", "nope")


def test_route_disconnected_raises():
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    with pytest.raises(ValueError):
        topo.route("a", "b")


def test_route_is_cached_and_symmetric():
    topo = build_diamond()
    forward = topo.route("a", "d")
    backward = topo.route("d", "a")
    assert [l.link_id for l in backward.links] == \
        [l.link_id for l in reversed(forward.links)]
    assert topo.route("a", "d") is forward  # cache hit


def test_cache_invalidated_by_new_link():
    topo = build_diamond()
    topo.route("a", "d")
    topo.add_link("a", "d", bandwidth=10.0, latency=0.1)
    assert topo.route("a", "d").latency == 0.1


def test_bottleneck_bandwidth():
    topo = Topology()
    for name in "abc":
        topo.add_node(name)
    topo.add_link("a", "b", bandwidth=100.0, latency=0.0)
    topo.add_link("b", "c", bandwidth=3.0, latency=0.0)
    assert topo.route("a", "c").bottleneck_bandwidth == 3.0


def test_nodes_of_kind():
    topo = Topology()
    topo.add_node("s1", "site")
    topo.add_node("r1", "router")
    topo.add_node("s2", "site")
    assert topo.nodes_of_kind("site") == ("s1", "s2")
    assert topo.node_kind("r1") == "router"


def test_neighbors_and_degree():
    topo = build_diamond()
    assert set(topo.neighbors("a")) == {"b", "c"}
    assert topo.degree("d") == 2


def test_is_connected():
    topo = build_diamond()
    assert topo.is_connected()
    topo.add_node("island")
    assert not topo.is_connected()
    assert Topology().is_connected()  # vacuous
