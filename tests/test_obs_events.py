"""Event log: schemas, ring buffer, rotation, round-trip, timelines."""

import json

import pytest

from repro.analysis.eventlog import load_timelines, task_timelines
from repro.obs.events import (EVENT_SCHEMAS, EventLog, EventSchemaError,
                              RotatingJsonlSink, iter_events,
                              read_events, validate_event)


def fake_clock(start=1000.0, step=1.0):
    state = [start - step]

    def tick():
        state[0] += step
        return state[0]

    return tick


# -- schema validation -------------------------------------------------------

def test_every_schema_has_the_documented_minimum_fields():
    assert EVENT_SCHEMAS["assign"] == {"task_id", "site", "worker"}
    assert EVENT_SCHEMAS["lease-expire"] == {"task_id", "lease_id"}
    assert EVENT_SCHEMAS["requeue"] == {"task_id", "reason"}


def test_validate_rejects_unknown_type_and_missing_fields():
    with pytest.raises(EventSchemaError):
        validate_event({"event": "nonsense"})
    with pytest.raises(EventSchemaError):
        validate_event({"event": "assign", "task_id": 1, "site": 0})
    record = {"event": "assign", "task_id": 1, "site": 0, "worker": "w",
              "extra": "fields are fine"}
    assert validate_event(record) is record


def test_emit_stamps_ts_and_seq_and_validates():
    log = EventLog(clock=fake_clock())
    first = log.emit("submit", job_id=0, tasks=3)
    second = log.emit("assign", task_id=0, site=1, worker="w0")
    assert (first["ts"], first["seq"]) == (1000.0, 0)
    assert (second["ts"], second["seq"]) == (1001.0, 1)
    with pytest.raises(EventSchemaError):
        log.emit("assign", task_id=0)  # rejected before buffering
    assert log.emitted == 2


def test_ring_buffer_keeps_only_the_newest():
    log = EventLog(ring_size=3, clock=fake_clock())
    for task_id in range(5):
        log.emit("requeue", task_id=task_id, reason="test")
    assert log.emitted == 5
    assert [record["task_id"] for record in log.tail()] == [2, 3, 4]
    assert [record["task_id"] for record in log.tail(2)] == [3, 4]


# -- file sink + round-trip --------------------------------------------------

def test_jsonl_round_trip_through_the_file_sink(tmp_path):
    path = str(tmp_path / "events.jsonl")
    with EventLog(path=path, clock=fake_clock()) as log:
        log.emit("submit", job_id=0, tasks=2, task_ids=[0, 1])
        log.emit("assign", task_id=0, site=2, worker="w1", lease_id=9)
        log.emit("complete", task_id=0, worker="w1")
    records = read_events(path)
    assert [record["event"] for record in records] == \
        ["submit", "assign", "complete"]
    assert records[1]["lease_id"] == 9  # extra fields survive
    # Compact one-object-per-line encoding.
    lines = (tmp_path / "events.jsonl").read_text().splitlines()
    assert len(lines) == 3
    assert all(json.loads(line) for line in lines)


def test_read_rejects_corrupt_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"event": "assign", "task_id": 1}\n')
    with pytest.raises(EventSchemaError):
        read_events(str(path))
    path.write_text("not json\n")
    with pytest.raises(EventSchemaError):
        read_events(str(path))


def test_rotating_sink_shifts_backups(tmp_path):
    path = str(tmp_path / "log.jsonl")
    sink = RotatingJsonlSink(path, max_bytes=40, backups=2)
    for index in range(12):
        sink.write(f'{{"line": {index}}}\n')
    sink.close()
    assert (tmp_path / "log.jsonl").exists()
    assert (tmp_path / "log.jsonl.1").exists()
    assert (tmp_path / "log.jsonl.2").exists()
    assert not (tmp_path / "log.jsonl.3").exists()
    # No line is ever split across files, and .1 is newer than .2.
    newest = (tmp_path / "log.jsonl.1").read_text().splitlines()
    oldest = (tmp_path / "log.jsonl.2").read_text().splitlines()
    assert all(json.loads(line) for line in newest + oldest)
    assert (json.loads(oldest[-1])["line"]
            < json.loads(newest[0])["line"])


# -- WAL duty: crash tolerance, barriers, sequence continuity ----------------

def test_reader_tolerates_a_crash_truncated_final_line(tmp_path):
    """A ``kill -9`` can cut the last line short.  That exact shape —
    final line, no trailing newline, unparseable — is truncation and
    is skipped with a warning; everything before it still reads."""
    path = tmp_path / "wal.jsonl"
    with EventLog(path=str(path), clock=fake_clock()) as log:
        log.emit("submit", job_id=0, tasks=1, task_ids=[0])
        log.emit("assign", task_id=0, site=0, worker="w0")
    whole = path.read_text()
    path.write_text(whole[:-20])  # the crash ate the line's tail
    records = list(iter_events(str(path)))
    assert [record["event"] for record in records] == ["submit"]


def test_reader_still_rejects_newline_terminated_corruption(tmp_path):
    """A *complete* line of bad JSON is corruption, not truncation —
    tolerating it would silently drop acknowledged WAL records."""
    path = tmp_path / "wal.jsonl"
    with EventLog(path=str(path), clock=fake_clock()) as log:
        log.emit("submit", job_id=0, tasks=1, task_ids=[0])
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("not json\n")  # newline-terminated: corrupt
    with pytest.raises(EventSchemaError):
        list(iter_events(str(path)))


def test_truncated_mid_file_line_is_impossible_to_miss(tmp_path):
    """Only the final line of a file can lack a newline; an
    unparseable *interior* line always raises."""
    path = tmp_path / "wal.jsonl"
    path.write_text('{"bro\n{"event": "requeue", "task_id": 1, '
                    '"reason": "r", "ts": 1.0, "seq": 1}\n')
    with pytest.raises(EventSchemaError):
        list(iter_events(str(path)))


def test_auto_flush_makes_records_visible_without_close(tmp_path):
    """WAL mode: every emit is flushed before the caller can ack, so
    the record is on the OS side even if the process dies next."""
    path = tmp_path / "wal.jsonl"
    log = EventLog(path=str(path), clock=fake_clock(), auto_flush=True)
    log.emit("submit", job_id=0, tasks=1, task_ids=[0])
    # Deliberately no close/flush: the emit itself must have flushed.
    assert [r["event"] for r in iter_events(str(path))] == ["submit"]
    log.close()


def test_sync_is_a_durability_barrier_and_survives_no_sink():
    log = EventLog()  # ring-only: sync must be a harmless no-op
    log.emit("requeue", task_id=0, reason="test")
    log.sync()
    log.flush()
    log.close()


def test_seq_start_continues_a_previous_incarnations_sequence(tmp_path):
    path = tmp_path / "wal.jsonl"
    with EventLog(path=str(path), clock=fake_clock()) as log:
        log.emit("submit", job_id=0, tasks=1, task_ids=[0])
        log.emit("assign", task_id=0, site=0, worker="w0")
        next_seq = log.next_seq
    assert next_seq == 2
    with EventLog(path=str(path), clock=fake_clock(),
                  seq_start=next_seq) as log:
        assert log.next_seq == 2
        record = log.emit("complete", task_id=0, worker="w0")
        assert record["seq"] == 2
        assert log.emitted == 1  # counts this incarnation only
    seqs = [record["seq"] for record in iter_events(str(path))]
    assert seqs == [0, 1, 2]  # one monotone history across restarts


# -- timeline reconstruction -------------------------------------------------

def test_timelines_reconstruct_assign_complete_pairs():
    log = EventLog(clock=fake_clock())
    log.emit("submit", job_id=0, tasks=2, task_ids=[0, 1])
    log.emit("assign", task_id=0, site=1, worker="w0")
    log.emit("assign", task_id=1, site=2, worker="w1")
    log.emit("complete", task_id=1, worker="w1")
    log.emit("complete", task_id=0, worker="w0")
    timelines = task_timelines(log.tail())
    assert set(timelines) == {0, 1}
    zero = timelines[0]
    assert zero.completed and zero.retries == 0
    assert zero.job_id == 0
    assert zero.submitted_at == 1000.0
    assert zero.queue_wait == pytest.approx(1.0)
    assert zero.turnaround == pytest.approx(4.0)
    assert zero.attempts[0].worker == "w0"
    assert zero.attempts[0].site == 1
    assert zero.attempts[0].duration == pytest.approx(3.0)


def test_timelines_track_reassignment_after_lease_expiry():
    log = EventLog(clock=fake_clock())
    log.emit("submit", job_id=0, tasks=1, task_ids=[7])
    log.emit("assign", task_id=7, site=0, worker="w0", lease_id=1)
    log.emit("lease-expire", task_id=7, lease_id=1, worker="w0")
    log.emit("requeue", task_id=7, reason="lease-expired")
    log.emit("assign", task_id=7, site=1, worker="w1", lease_id=2)
    log.emit("complete", task_id=7, worker="w1")
    line = task_timelines(log.tail())[7]
    assert line.retries == 1
    assert [attempt.outcome for attempt in line.attempts] == \
        ["lease-expired", "completed"]
    assert line.attempts[0].worker == "w0"
    assert line.attempts[1].worker == "w1"
    assert line.completed_at == 1005.0


def test_timelines_handle_disconnect_requeue_and_open_attempts():
    log = EventLog(clock=fake_clock())
    log.emit("assign", task_id=3, site=0, worker="w0")
    log.emit("requeue", task_id=3, reason="disconnect", worker="w0")
    log.emit("assign", task_id=3, site=0, worker="w1")
    line = task_timelines(log.tail())[3]
    assert line.attempts[0].outcome == "disconnect"
    assert line.attempts[1].outcome is None  # log ended mid-flight
    assert line.attempts[1].duration is None
    assert not line.completed
    assert line.turnaround is None  # no submit record for this task


def test_load_timelines_reads_a_file(tmp_path):
    path = str(tmp_path / "events.jsonl")
    with EventLog(path=path, clock=fake_clock()) as log:
        log.emit("submit", job_id=4, tasks=1, task_ids=[0])
        log.emit("assign", task_id=0, site=0, worker="w0")
        log.emit("complete", task_id=0, worker="w0")
    timelines = load_timelines(path)
    assert timelines[0].completed
    assert timelines[0].job_id == 4
