"""End-to-end observability: HTTP scrape endpoint, ``repro top``,
event logs from a real load run — all over localhost sockets.

The scrape responses are validated with the strict parser from
:mod:`repro.obs.prometheus` (the same one the CI smoke job uses), not
by substring grepping.
"""

import asyncio
import json
import urllib.error
import urllib.request

import pytest

from repro.analysis.eventlog import load_timelines
from repro.exp import ExperimentConfig
from repro.exp.runner import build_job
from repro.obs import CONTENT_TYPE, DecisionTracer, ObsHttpServer, parse
from repro.obs.top import render_top, run_top
from repro.serve.loadgen import run_load
from repro.serve.server import SchedulerServer
from repro.serve.service import SchedulerService

TIMEOUT = 60


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=TIMEOUT))


def coadd_job(num_tasks=60, seed=0):
    return build_job(ExperimentConfig(num_tasks=num_tasks,
                                      capacity_files=500, seed=seed))


def http_get(url, timeout=10.0):
    """Blocking GET returning (status, content_type, body_text)."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return (response.status,
                    response.headers.get("Content-Type"),
                    response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return (error.code, error.headers.get("Content-Type"),
                error.read().decode("utf-8"))


async def obs_stack(metric="combined", n=2, seed=42):
    """A scheduler server plus its observability endpoint."""
    tracer = DecisionTracer()
    service = SchedulerService(metric=metric, n=n, seed=seed,
                               tracer=tracer)
    server = SchedulerServer(service)
    await server.start()

    def stats_json():
        snapshot = service.stats_snapshot()
        snapshot["jobs"] = service.jobs_overview()
        return snapshot

    obs = ObsHttpServer(
        registry=service.stats.registry,
        json_routes={"/stats.json": stats_json,
                     "/trace.json": lambda: {"spans": tracer.spans()}},
        health=lambda: {"status": "ok",
                        "queue_depth": service.queue_depth})
    await obs.start()
    return service, server, obs, tracer


def test_scrape_endpoint_under_live_load():
    """Scrapes issued *while* a worker fleet hammers the scheduler
    parse cleanly every time and converge with the STATS snapshot."""

    async def scenario():
        service, server, obs, tracer = await obs_stack()
        job = coadd_job(80)
        scrape_results = []
        done = asyncio.Event()

        async def scrape_loop():
            while not done.is_set():
                status, ctype, body = await asyncio.to_thread(
                    http_get, obs.url + "/metrics")
                scrape_results.append((status, ctype, parse(body)))
                await asyncio.sleep(0.01)

        scraper = asyncio.ensure_future(scrape_loop())
        try:
            report = await run_load(server.host, server.port, job,
                                    workers=6, sites=3, drain=False)
        finally:
            done.set()
            await scraper
        # Every mid-flight scrape was well-formed.
        assert len(scrape_results) >= 1
        for status, ctype, families in scrape_results:
            assert status == 200
            assert ctype == CONTENT_TYPE
            assert "repro_assignments_total" in families
        # The final scrape agrees with the final STATS reply.
        _status, _ctype, body = await asyncio.to_thread(
            http_get, obs.url + "/metrics")
        families = parse(body)
        assert families["repro_completions_total"].value() == \
            report["stats"]["completions"] == len(job)
        assert families["repro_queue_depth"].value() == 0.0
        assert families["repro_decision_latency_seconds"].value(
            suffix="_count") == report["stats"]["assignments"]
        # The decision kernel's per-metric latency histogram is
        # scraped too, labeled with the policy the daemon runs.
        assert "repro_scheduler_decision_seconds" in families
        assert families["repro_scheduler_decision_seconds"].value(
            labels={"metric": "combined"}, suffix="_count",
        ) == report["stats"]["assignments"]
        assert tracer.recorded == report["stats"]["assignments"]
        await obs.stop()
        await server.stop()

    run(scenario())


def test_healthz_stats_json_trace_json_and_errors():
    async def scenario():
        service, server, obs, _tracer = await obs_stack()
        service.submit_job([{"files": [1, 2]}, {"files": [3]}])

        status, ctype, body = await asyncio.to_thread(
            http_get, obs.url + "/healthz")
        assert status == 200 and ctype == "application/json"
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["queue_depth"] == 2

        status, _ctype, body = await asyncio.to_thread(
            http_get, obs.url + "/stats.json")
        snapshot = json.loads(body)
        assert status == 200
        assert snapshot["tasks_submitted"] == 2
        assert snapshot["jobs"][0]["tasks"] == 2

        status, _ctype, body = await asyncio.to_thread(
            http_get, obs.url + "/trace.json")
        assert status == 200 and json.loads(body) == {"spans": []}

        status, _ctype, body = await asyncio.to_thread(
            http_get, obs.url + "/nope")
        assert status == 404
        assert "/metrics" in body  # the 404 lists real routes

        await obs.stop()
        await server.stop()

    run(scenario())


def test_post_is_rejected_and_head_has_no_body():
    async def scenario():
        obs = ObsHttpServer(json_routes={"/x.json": lambda: {"a": 1}})
        await obs.start()

        reader, writer = await asyncio.open_connection(
            obs.host, obs.port)
        writer.write(b"POST /healthz HTTP/1.1\r\n\r\n")
        await writer.drain()
        status_line = await reader.readline()
        assert b"405" in status_line
        writer.close()
        await writer.wait_closed()

        reader, writer = await asyncio.open_connection(
            obs.host, obs.port)
        writer.write(b"HEAD /healthz HTTP/1.1\r\n\r\n")
        await writer.drain()
        raw = await reader.read()
        head, _sep, body = raw.partition(b"\r\n\r\n")
        assert b"200" in head.split(b"\r\n")[0]
        assert body == b""  # headers only
        writer.close()
        await writer.wait_closed()
        await obs.stop()

    run(scenario())


def test_handler_exception_returns_500_not_a_dead_connection():
    async def scenario():
        def boom():
            raise RuntimeError("kaput")

        obs = ObsHttpServer(json_routes={"/boom.json": boom})
        await obs.start()
        status, _ctype, body = await asyncio.to_thread(
            http_get, obs.url + "/boom.json")
        assert status == 500
        assert "RuntimeError" in body
        await obs.stop()

    run(scenario())


def test_repro_top_renders_against_a_live_server(capsys):
    async def scenario():
        service, server, obs, _tracer = await obs_stack()
        job = coadd_job(40)
        await run_load(server.host, server.port, job, workers=4,
                       sites=2, drain=False)
        url = obs.url + "/stats.json"
        code = await asyncio.to_thread(
            run_top, url, 0.0, 1, False)
        await obs.stop()
        await server.stop()
        return code

    assert run(scenario()) == 0
    shown = capsys.readouterr().out
    assert "repro top — serving" in shown
    assert "40 submitted, 40 done" in shown.replace("tasks     : ", "")
    assert "overlap hit rate" in shown
    assert "job   progress" in shown
    assert "[####################] 40/40 done" in shown


def test_repro_top_exits_nonzero_when_server_is_gone():
    messages = []
    code = run_top("http://127.0.0.1:9/stats.json", iterations=3,
                   out=messages.append)
    assert code == 1
    assert len(messages) == 1 and "cannot fetch" in messages[0]


def test_render_top_handles_sparse_snapshots():
    text = render_top({"draining": True})
    assert "DRAINING" in text
    assert "site" not in text  # no site table without site data


def test_load_event_log_reconstructs_every_task_timeline(tmp_path):
    """Acceptance path: ``repro load --event-log`` JSONL feeds
    ``repro.analysis`` timeline reconstruction."""
    path = str(tmp_path / "load-events.jsonl")

    async def scenario():
        service = SchedulerService(metric="combined", n=2, seed=3)
        server = SchedulerServer(service)
        await server.start()
        job = coadd_job(50, seed=1)
        report = await run_load(server.host, server.port, job,
                                workers=5, sites=5, drain=False,
                                event_log=path)
        await server.stop()
        return report

    report = run(scenario())
    assert report["event_log"] == path
    timelines = load_timelines(path)
    assert len(timelines) == report["tasks_submitted"] == 50
    for line in timelines.values():
        assert line.completed
        assert line.retries == 0
        assert line.submitted_at is not None
        assert line.turnaround >= 0.0
        assert line.attempts[0].worker.startswith("w")
    workers_seen = {line.attempts[0].worker
                    for line in timelines.values()}
    assert workers_seen <= {f"w{index}" for index in range(5)}


def test_server_event_log_and_client_log_agree(tmp_path):
    """Server-side and client-side event logs of one run tell the
    same completion story."""
    from repro.obs.events import EventLog

    server_log = str(tmp_path / "server.jsonl")
    client_log = str(tmp_path / "client.jsonl")

    async def scenario():
        events = EventLog(path=server_log)
        service = SchedulerService(metric="combined", n=2, seed=3,
                                   events=events)
        server = SchedulerServer(service)
        await server.start()
        job = coadd_job(30, seed=2)
        await run_load(server.host, server.port, job, workers=3,
                       sites=3, drain=False, event_log=client_log)
        await server.stop()
        events.close()

    run(scenario())
    server_lines = load_timelines(server_log)
    client_lines = load_timelines(client_log)
    assert set(server_lines) == set(client_lines)
    for task_id, server_line in server_lines.items():
        assert server_line.completed
        assert client_lines[task_id].completed
        assert (server_line.attempts[-1].worker
                .startswith(client_lines[task_id].attempts[-1].worker))


def test_stats_interval_ticker_logs_one_json_line(caplog):
    import logging

    async def scenario():
        service = SchedulerService()
        server = SchedulerServer(service, stats_interval=0.05)
        await server.start()
        await asyncio.sleep(0.18)
        await server.stop()

    with caplog.at_level(logging.INFO, logger="repro.serve.stats"):
        run(scenario())
    lines = [record.getMessage() for record in caplog.records
             if record.name == "repro.serve.stats"]
    assert len(lines) >= 2  # at least two ticks in 0.18 s
    for line in lines:
        snapshot = json.loads(line)  # one valid JSON object per line
        assert "assignments" in snapshot and "uptime_s" in snapshot


def test_stats_interval_must_be_positive():
    service = SchedulerService()
    with pytest.raises(ValueError):
        SchedulerServer(service, stats_interval=0.0)


# -- repro top, cluster view -------------------------------------------------

def shard_snapshot(tasks=10, done=4, queue=3, p99=120.0, uptime=5.0):
    return {"tasks_submitted": tasks, "completions": done,
            "assignments": done, "queue_depth": queue,
            "outstanding": tasks - done - queue, "uptime_s": uptime,
            "decision_latency": {"count": done, "mean_us": 50.0,
                                 "p50_us": 40.0, "p90_us": 100.0,
                                 "p99_us": p99, "max_us": p99},
            "sites": {"0": {"assignments": done, "overlap_hits": 1,
                            "overlap_hit_rate": 1.0 / max(done, 1)}}}


def test_render_cluster_top_merges_per_shard_endpoints():
    from repro.obs.top import render_cluster_top

    text = render_cluster_top([
        ("127.0.0.1:9001", shard_snapshot(tasks=10, done=4)),
        ("127.0.0.1:9002", shard_snapshot(tasks=6, done=6, queue=0)),
        ("127.0.0.1:9003", None),
    ])
    assert "cluster: 2/3 shard(s) reporting" in text
    assert "127.0.0.1:9001" in text and "127.0.0.1:9003" in text
    assert "unreachable" in text
    # The aggregate body below the table sums the reporting shards.
    assert "16 submitted, 10 done" in text


def test_render_cluster_top_unpacks_a_router_aggregate():
    """One endpoint that already carries a ``shards`` breakdown (the
    supervisor's /stats.json) becomes per-shard rows, not one row."""
    from repro.cluster.stats import aggregate_stats
    from repro.obs.top import render_cluster_top

    merged = aggregate_stats([(0, shard_snapshot(tasks=8, done=8,
                                                 queue=0)),
                              (1, shard_snapshot(tasks=4, done=1))])
    text = render_cluster_top([("127.0.0.1:9100", merged)])
    assert "cluster: 2/2 shard(s) reporting" in text
    assert "shard 0" in text and "shard 1" in text
    assert "12 submitted, 9 done" in text


def test_run_cluster_top_polls_every_endpoint(capsys):
    from repro.obs.top import run_cluster_top

    payloads = {"http://a/stats.json": shard_snapshot(tasks=5, done=5,
                                                      queue=0),
                "http://b/stats.json": shard_snapshot(tasks=3, done=0)}
    code = run_cluster_top(list(payloads), iterations=1, clear=False,
                           fetch=payloads.__getitem__)
    assert code == 0
    shown = capsys.readouterr().out
    assert "cluster: 2/2 shard(s) reporting" in shown
    assert "8 submitted, 5 done" in shown


def test_run_cluster_top_fails_only_when_every_endpoint_is_gone():
    from repro.obs.top import run_cluster_top

    def fetch(url):
        raise ConnectionError("down")

    messages = []
    code = run_cluster_top(["http://a/stats.json",
                            "http://b/stats.json"],
                           iterations=2, out=messages.append,
                           fetch=fetch)
    assert code == 1
    assert sum("cannot fetch" in line for line in messages) == 2
