"""The metrics core: counters, gauges, histograms, registry, labels.

Covers the O(1) ``bit_length`` bucket indexing against the old linear
loop (kept as ``reference_bucket_index``), label-family semantics, the
callback-gauge contract, and the bridge that publishes simulator
probes into a registry under the live scheduler's metric names.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (Counter, Gauge, LatencyHistogram,
                               MetricsRegistry, reference_bucket_index)
from repro.sim import Environment
from repro.sim.monitor import PROBE_METRIC_NAMES, StateMonitor


# -- counter / gauge ---------------------------------------------------------

def test_counter_is_monotonic():
    counter = Counter()
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_set_inc_dec():
    gauge = Gauge()
    gauge.set(4)
    gauge.inc()
    gauge.dec(2)
    assert gauge.value == 3.0


def test_callback_gauge_is_live_and_rejects_set():
    depth = [7]
    gauge = Gauge(callback=lambda: depth[0])
    assert gauge.value == 7.0
    depth[0] = 11
    assert gauge.value == 11.0
    with pytest.raises(RuntimeError):
        gauge.set(1)


# -- histogram bucket indexing -----------------------------------------------

def test_bucket_index_matches_linear_reference_on_edges():
    hist = LatencyHistogram(base_seconds=1e-6, num_buckets=36)
    probes = [0.0, 1e-9, 1e-6, 1.0000001e-6, 2e-6, 3e-6, 4e-6,
              4.0000001e-6, 1e-3, 1.0, 60.0, 1e9]
    for edge in hist._edges:
        probes += [edge, edge * 0.999999, edge * 1.000001]
    for seconds in probes:
        assert (hist.bucket_index(seconds)
                == reference_bucket_index(hist, seconds)), seconds


@settings(max_examples=300, deadline=None)
@given(st.floats(min_value=0.0, max_value=1e12, allow_nan=False))
def test_bucket_index_matches_linear_reference_everywhere(seconds):
    hist = LatencyHistogram(base_seconds=1e-6, num_buckets=36)
    assert (hist.bucket_index(seconds)
            == reference_bucket_index(hist, seconds))


@settings(max_examples=100, deadline=None)
@given(st.floats(min_value=1e-9, max_value=1e6, allow_nan=False),
       st.integers(min_value=1, max_value=48))
def test_bucket_index_matches_reference_for_any_geometry(seconds,
                                                         num_buckets):
    hist = LatencyHistogram(base_seconds=3.7e-7, num_buckets=num_buckets)
    assert (hist.bucket_index(seconds)
            == reference_bucket_index(hist, seconds))


def test_bucket_index_is_log_not_linear():
    """A sample far past the top edge must not cost a 36-step walk —
    spot-check the value used by the overflow shortcut."""
    hist = LatencyHistogram(num_buckets=8)
    top = len(hist._counts) - 1
    assert hist.bucket_index(1e12) == top
    assert int(1e12 / hist._base) >= 1 << top


def test_histogram_cumulative_buckets_fold_overflow_into_inf():
    hist = LatencyHistogram(base_seconds=1e-6, num_buckets=4)
    hist.record(2e-6)   # bucket 1
    hist.record(1e3)    # overflow: capped top bucket
    buckets = hist.cumulative_buckets()
    # Finite edges only; the overflow sample appears in none of them.
    assert [count for _edge, count in buckets] == [0, 1, 1, 1]
    samples = list(hist.samples())
    inf_bucket = [value for suffix, labels, value in samples
                  if suffix == "_bucket" and labels == (("le", "+Inf"),)]
    assert inf_bucket == [2.0]
    assert ("_count", (), 2.0) in samples
    total = [value for suffix, _labels, value in samples
             if suffix == "_sum"][0]
    assert total == pytest.approx(2e-6 + 1e3)


def test_histogram_snapshot_shape_is_wire_compatible():
    hist = LatencyHistogram()
    hist.record(100e-6)
    snap = hist.snapshot()
    assert set(snap) == {"count", "mean_us", "p50_us", "p90_us",
                         "p99_us", "max_us"}
    assert snap["count"] == 1
    assert snap["mean_us"] == pytest.approx(100.0)


# -- registry + labels -------------------------------------------------------

def test_registry_returns_child_for_unlabeled_and_family_for_labeled():
    registry = MetricsRegistry()
    plain = registry.counter("repro_things_total", "things")
    plain.inc(3)
    labeled = registry.counter("repro_site_things_total", "per site",
                               labelnames=("site",))
    labeled.labels(site=1).inc()
    labeled.labels(site=1).inc()
    labeled.labels(site=0).inc()
    assert plain.value == 3
    assert labeled.labels(site=1).value == 2
    # Children iterate sorted by label-value tuple.
    assert [key for key, _child in labeled.children()] == [("0",), ("1",)]


def test_registry_rejects_duplicates_and_bad_names():
    registry = MetricsRegistry()
    registry.gauge("ok_name")
    with pytest.raises(ValueError):
        registry.counter("ok_name")
    with pytest.raises(ValueError):
        registry.counter("0bad")
    with pytest.raises(ValueError):
        registry.counter("x_total", labelnames=("0bad",))
    with pytest.raises(ValueError):
        registry.gauge("cb", labelnames=("a",), callback=lambda: 1)


def test_family_labels_must_match_declared_names():
    registry = MetricsRegistry()
    family = registry.counter("x_total", labelnames=("site", "kind"))
    with pytest.raises(ValueError):
        family.labels(site=1)
    with pytest.raises(ValueError):
        family.labels(site=1, kind="a", extra="b")
    assert family.labels(site=1, kind="a") is family.labels(
        kind="a", site=1)


def test_registry_collects_in_registration_order():
    registry = MetricsRegistry()
    registry.counter("b_total")
    registry.gauge("a")
    registry.histogram("c_seconds")
    assert [family.name for family in registry.collect()] == \
        ["b_total", "a", "c_seconds"]
    assert "a" in registry and "zzz" not in registry
    assert registry.get("a").kind == "gauge"


# -- simulator bridge --------------------------------------------------------

def test_state_monitor_publishes_probes_under_serve_metric_names():
    env = Environment()
    monitor = StateMonitor(env, interval=1.0,
                           stop_when=lambda: env.now >= 3.0)
    backlog = [5.0]
    monitor.add_probe("pending_tasks", lambda: backlog[0])
    registry = MetricsRegistry()
    monitor.bind_registry(registry)
    # Probes added after binding are exported too.
    monitor.add_probe("weirdness", lambda: 1.25)

    assert "repro_queue_depth" in registry  # PROBE_METRIC_NAMES mapping
    assert PROBE_METRIC_NAMES["pending_tasks"] == "repro_queue_depth"
    assert "repro_sim_weirdness" in registry  # fallback naming

    gauge = registry.get("repro_queue_depth").labels()
    assert gauge.value == 0.0  # no samples yet
    env.run()
    backlog[0] = 9.0  # later than the last sample: gauge shows latest
    assert monitor.latest("pending_tasks") == 5.0
    assert gauge.value == 5.0
    assert registry.get("repro_sim_weirdness").labels().value == 1.25


def test_histogram_rejects_bad_geometry():
    with pytest.raises(ValueError):
        LatencyHistogram(base_seconds=0.0)
    with pytest.raises(ValueError):
        LatencyHistogram(num_buckets=0)
    assert math.isfinite(LatencyHistogram().quantile(0.99))
