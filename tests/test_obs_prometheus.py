"""Prometheus exposition: writer output, strict parser, invariants.

The same parser validates CI's live scrape, so these tests pin both
directions: what we write is what a Prometheus server accepts, and
malformed text is rejected loudly.
"""

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import (CONTENT_TYPE, ParseError, parse,
                                  render)
from repro.serve.stats import ServeStats


def test_content_type_pins_exposition_version():
    assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


def test_render_counter_gauge_help_and_type_lines():
    registry = MetricsRegistry()
    registry.counter("repro_widgets_total", "Widgets made").inc(3)
    registry.gauge("repro_depth", "Current depth").set(2.5)
    text = render(registry)
    assert "# HELP repro_widgets_total Widgets made\n" in text
    assert "# TYPE repro_widgets_total counter\n" in text
    assert "repro_widgets_total 3\n" in text
    assert "# TYPE repro_depth gauge\n" in text
    assert "repro_depth 2.5\n" in text
    assert text.endswith("\n")


def test_label_values_escape_and_round_trip():
    registry = MetricsRegistry()
    family = registry.counter("repro_odd_total", 'has "quotes"\nand \\',
                              labelnames=("name",))
    nasty = 'va"l\nue\\end'
    family.labels(name=nasty).inc()
    text = render(registry)
    assert r'name="va\"l\nue\\end"' in text
    parsed = parse(text)
    family_back = parsed["repro_odd_total"]
    assert family_back.help == 'has "quotes"\nand \\'
    assert family_back.value({"name": nasty}) == 1.0


def test_labels_render_in_declared_order():
    registry = MetricsRegistry()
    family = registry.counter("repro_ordered_total",
                              labelnames=("zeta", "alpha"))
    family.labels(zeta="1", alpha="2").inc()
    text = render(registry)
    # Declared order (zeta before alpha), not alphabetical.
    assert 'repro_ordered_total{zeta="1",alpha="2"} 1' in text


def test_histogram_exposition_invariants():
    registry = MetricsRegistry()
    hist = registry.histogram("repro_latency_seconds", "latency",
                              base_seconds=1e-6, num_buckets=6)
    for seconds in (0.5e-6, 3e-6, 3e-6, 1.0):  # incl. overflow sample
        hist.record(seconds)
    text = render(registry)
    family = parse(text)["repro_latency_seconds"]
    assert family.kind == "histogram"
    assert family.value(suffix="_count") == 4.0
    assert family.value(suffix="_sum") == pytest.approx(0.5e-6 + 6e-6
                                                        + 1.0)
    assert family.value({"le": "+Inf"}, suffix="_bucket") == 4.0
    # Cumulative along finite edges; the 1.0 s overflow only in +Inf.
    assert family.value({"le": "1e-06"}, suffix="_bucket") == 1.0
    assert family.value({"le": "4e-06"}, suffix="_bucket") == 3.0
    edges = [labels["le"] for name, labels, _value in family.samples
             if name.endswith("_bucket")]
    assert edges[-1] == "+Inf"
    finite = [float(edge) for edge in edges[:-1]]
    assert finite == sorted(finite)


def test_parse_rejects_malformed_lines():
    with pytest.raises(ParseError):
        parse("no spaces or values\n")
    with pytest.raises(ParseError):
        parse('x{le="0.1" 3\n')  # unterminated label block
    with pytest.raises(ParseError):
        parse("x 12abc\n")
    with pytest.raises(ParseError):
        parse('x{bad-name="1"} 2\n')
    with pytest.raises(ParseError):
        parse('x{a="1",a="2"} 2\n')  # duplicate label
    with pytest.raises(ParseError):
        parse('x{a="\\q"} 2\n')  # bad escape


def test_parse_rejects_duplicate_type_and_late_type():
    with pytest.raises(ParseError):
        parse("# TYPE x counter\n# TYPE x counter\nx 1\n")
    with pytest.raises(ParseError):
        parse("x 1\n# TYPE x counter\n")


def test_parse_rejects_non_cumulative_histogram():
    bad = ("# TYPE h histogram\n"
           'h_bucket{le="1"} 5\n'
           'h_bucket{le="2"} 3\n'
           'h_bucket{le="+Inf"} 5\n'
           "h_sum 1\nh_count 5\n")
    with pytest.raises(ParseError):
        parse(bad)


def test_parse_rejects_histogram_without_inf_or_mismatched_count():
    with pytest.raises(ParseError):
        parse("# TYPE h histogram\n"
              'h_bucket{le="1"} 1\n'
              "h_sum 1\nh_count 1\n")
    with pytest.raises(ParseError):
        parse("# TYPE h histogram\n"
              'h_bucket{le="1"} 1\n'
              'h_bucket{le="+Inf"} 1\n'
              "h_sum 1\nh_count 2\n")


def test_parse_handles_special_values_and_comments():
    families = parse("# a free-form comment\n"
                     "x_nan NaN\n"
                     "x_inf +Inf\n"
                     "x_ninf -Inf\n")
    assert math.isnan(families["x_nan"].value())
    assert families["x_inf"].value() == float("inf")
    assert families["x_ninf"].value() == float("-inf")


def test_serve_stats_registry_renders_parseable_exposition():
    """The real registry the daemon exposes passes the strict parser,
    and the Prometheus numbers agree with the STATS snapshot."""
    stats = ServeStats()
    stats.jobs_submitted += 1
    stats.tasks_submitted += 5
    stats.record_assignment(0, 120e-6, overlap_hit=True)
    stats.record_assignment(1, 80e-6, overlap_hit=False)
    stats.record_delta(added=3, removed=1, referenced=7)
    families = parse(render(stats.registry))
    snap = stats.snapshot()
    assert families["repro_assignments_total"].value() == \
        snap["assignments"]
    assert families["repro_tasks_submitted_total"].value() == 5.0
    assert families["repro_site_assignments_total"].value(
        {"site": "0"}) == 1.0
    assert families["repro_site_overlap_hit_rate"].value(
        {"site": "1"}) == 0.0
    assert families["repro_decision_latency_seconds"].value(
        suffix="_count") == 2.0
    assert families["repro_files_added_total"].value() == 3.0
