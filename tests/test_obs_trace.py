"""Decision tracing: spans from ``PolicyEngine.choose``.

Pins the two contractual properties: the hook explains decisions
(candidate scores, chosen vs runner-up) and it never *changes* them —
a traced engine replays bit-identically against an untraced twin.
"""

import random

import pytest

from repro.core.policy_engine import PolicyEngine
from repro.grid.job import Task
from repro.obs.trace import DecisionTracer, explain_span
from repro.serve.service import SchedulerService


def make_engine(metric, n=1, seed=0):
    """Two pending tasks engineered to split the metrics:

    * task 0 has 5 files, 2 of them resident at site 0 —
      overlap weight 2, rest weight 1/(5-2) = 1/3;
    * task 1 has 2 files, 1 resident — overlap weight 1, rest
      weight 1/(2-1) = 1.

    The overlap metric prefers task 0, the rest metric task 1.
    """
    tasks = {0: Task(task_id=0, files=frozenset({1, 2, 3, 4, 5})),
             1: Task(task_id=1, files=frozenset({6, 7}))}
    engine = PolicyEngine(tasks, metric=metric, n=n,
                          rng=random.Random(seed))
    engine.attach_site(0)
    for task in tasks.values():
        engine.add_task(task)
    for fid in (1, 2, 6):
        engine.file_added(0, fid)
    return engine


# -- tracer mechanics --------------------------------------------------------

def test_tracer_stamps_and_ring_buffers():
    clock = iter(range(100))
    tracer = DecisionTracer(capacity=2, clock=lambda: next(clock))
    for index in range(3):
        tracer.record({"site": 0, "metric": "rest", "chosen": index,
                       "candidates": []})
    assert tracer.recorded == 3
    assert len(tracer) == 2
    assert [span["chosen"] for span in tracer.spans()] == [1, 2]
    assert tracer.last()["decision"] == 2
    assert tracer.spans(1)[0]["ts"] == 2.0
    with pytest.raises(ValueError):
        DecisionTracer(capacity=0)


def test_tracer_copies_the_span():
    tracer = DecisionTracer()
    original = {"site": 0, "metric": "rest", "chosen": 1,
                "candidates": []}
    stamped = tracer.record(original)
    assert "decision" in stamped and "decision" not in original


# -- span content ------------------------------------------------------------

def test_overlap_and_rest_metrics_disagree_and_spans_show_why():
    spans = {}
    for metric in ("overlap", "rest"):
        engine = make_engine(metric, n=1)
        engine.on_decision = lambda span, m=metric: spans.__setitem__(
            m, span)
        chosen = engine.choose(0)
        assert spans[metric]["chosen"] == chosen.task_id

    # The same site state, opposite decisions.
    assert spans["overlap"]["chosen"] == 0
    assert spans["rest"]["chosen"] == 1

    overlap_top = spans["overlap"]["candidates"][0]
    assert overlap_top == {"task_id": 0, "weight": 2.0, "overlap": 2,
                           "num_files": 5, "files_missing": 3}
    rest_top = spans["rest"]["candidates"][0]
    assert rest_top["task_id"] == 1
    assert rest_top["weight"] == pytest.approx(1.0)
    assert rest_top["files_missing"] == 1


def test_span_carries_runner_up_and_pending_count():
    seen = []
    engine = make_engine("rest", n=2)
    engine.on_decision = seen.append
    chosen = engine.choose(0)
    span = seen[0]
    assert span["metric"] == "rest" and span["n"] == 2
    assert span["site"] == 0
    assert span["pending"] == 2
    assert len(span["candidates"]) == 2
    assert span["chosen"] == chosen.task_id
    assert span["runner_up"] is not None
    assert span["runner_up"] != span["chosen"]
    # Candidates are ranked: weights descending.
    weights = [candidate["weight"] for candidate in span["candidates"]]
    assert weights == sorted(weights, reverse=True)


def test_explain_span_reads_like_a_sentence():
    seen = []
    engine = make_engine("rest", n=2)
    engine.on_decision = seen.append
    engine.choose(0)
    sentence = explain_span(seen[0])
    assert "site 0 metric=rest n=2" in sentence
    assert "chose task" in sentence and "over task" in sentence
    assert "to fetch" in sentence


# -- the hook must not perturb the decision sequence -------------------------

def test_traced_engine_replays_bit_identically_to_untraced():
    plain = make_engine("combined", n=2, seed=7)
    traced = make_engine("combined", n=2, seed=7)
    tracer = DecisionTracer()
    traced.on_decision = tracer.record

    for engine in (plain, traced):
        engine.add_task(Task(task_id=2, files=frozenset({1, 6, 8})))

    for _round in range(3):
        a = plain.choose(0)
        b = traced.choose(0)
        assert a.task_id == b.task_id
        plain.remove_task(a)
        traced.remove_task(b)

    assert plain.decisions == traced.decisions == 3
    assert plain.tasks_scored == traced.tasks_scored
    assert tracer.recorded == 3
    # And the RNG streams stayed in lockstep.
    assert plain._rng.random() == traced._rng.random()


# -- service wiring ----------------------------------------------------------

def test_service_records_spans_and_decision_events():
    from repro.obs.events import EventLog

    tracer = DecisionTracer()
    events = EventLog()
    service = SchedulerService(metric="combined", n=2, events=events,
                               tracer=tracer)
    service.submit_job([{"files": [1, 2, 3]}, {"files": [4, 5]}])
    delivered = []
    service.request_task("w0", 0, delivered.append)
    assignment = delivered[0]
    assert tracer.recorded == 1
    assert tracer.last()["chosen"] == assignment.task.task_id
    decision_events = [record for record in events.tail()
                       if record["event"] == "decision"]
    assert len(decision_events) == 1
    assert decision_events[0]["chosen"] == assignment.task.task_id
    assert decision_events[0]["candidates"]
