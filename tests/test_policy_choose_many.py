"""``PolicyEngine.choose_many``: iterated ChooseTask(n) sampling
*without replacement*.

Contracts pinned here:

* a ``choose_many(site, k)`` draw sequence is bit-identical to k
  manual ``choose`` + ``remove_task`` iterations on a twin engine
  (same metric, n, seed) — including RNG consumption, so everything
  the engine does *afterwards* also stays identical;
* ``k == 1`` is decision-for-decision identical to one ``choose``
  call followed by ``remove_task`` (the protocol-v2 single-task
  assignment path);
* no task is ever drawn twice and every drawn task is retired from
  the pending set;
* ``eligible`` scoping restricts the draws exactly as it does for
  ``choose``;
* a short pending set yields a short batch, never an error.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy_engine import PolicyEngine
from repro.grid.job import Task


def build_engine(task_files, resident, metric, n, seed, sites=(0, 1)):
    tasks = {task_id: Task(task_id, frozenset(files))
             for task_id, files in enumerate(task_files)}
    engine = PolicyEngine(tasks, metric=metric, n=n,
                          rng=random.Random(seed))
    for site in sites:
        engine.attach_site(site)
    for task in tasks.values():
        engine.add_task(task)
    for site, fid in resident:
        engine.file_added(site, fid)
    return engine


@st.composite
def engine_params(draw):
    num_files = draw(st.integers(3, 20))
    num_tasks = draw(st.integers(1, 10))
    task_files = [
        draw(st.sets(st.integers(0, num_files - 1), min_size=1,
                     max_size=min(6, num_files)))
        for _ in range(num_tasks)
    ]
    resident = draw(st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, num_files - 1)),
        max_size=15))
    metric = draw(st.sampled_from(
        ["overlap", "rest", "combined", "combined-literal"]))
    n = draw(st.sampled_from([1, 2, 3]))
    seed = draw(st.integers(0, 2**16))
    k = draw(st.integers(1, num_tasks + 2))
    site = draw(st.integers(0, 1))
    return task_files, resident, metric, n, seed, k, site


@given(engine_params())
@settings(max_examples=60, deadline=None)
def test_choose_many_equals_iterated_choose(params):
    task_files, resident, metric, n, seed, k, site = params
    engine = build_engine(task_files, resident, metric, n, seed)
    twin = build_engine(task_files, resident, metric, n, seed)

    drawn = engine.choose_many(site, k)
    expected = []
    while len(expected) < k and twin.has_pending:
        task = twin.choose(site)
        twin.remove_task(task)
        expected.append(task)
    assert [t.task_id for t in drawn] == [t.task_id for t in expected]
    assert engine.decisions == twin.decisions

    # RNG and index state must match afterwards too: draining the
    # rest one at a time gives identical tails.
    while engine.has_pending:
        tail = engine.choose(site)
        engine.remove_task(tail)
        twin_tail = twin.choose(site)
        twin.remove_task(twin_tail)
        assert tail.task_id == twin_tail.task_id
    assert not twin.has_pending


@given(engine_params())
@settings(max_examples=60, deadline=None)
def test_choose_many_is_without_replacement(params):
    task_files, resident, metric, n, seed, k, site = params
    engine = build_engine(task_files, resident, metric, n, seed)
    before = len(task_files)

    drawn = [task.task_id for task in engine.choose_many(site, k)]
    assert len(drawn) == len(set(drawn)), "a task was drawn twice"
    assert len(drawn) == min(k, before)
    # Every drawn task is retired: a full drain never sees it again.
    remainder = []
    while engine.has_pending:
        task = engine.choose(site)
        engine.remove_task(task)
        remainder.append(task.task_id)
    assert not set(drawn) & set(remainder)
    assert sorted(drawn + remainder) == list(range(before))


@given(engine_params())
@settings(max_examples=40, deadline=None)
def test_k1_is_identical_to_choose_then_remove(params):
    task_files, resident, metric, n, seed, _, site = params
    engine = build_engine(task_files, resident, metric, n, seed)
    twin = build_engine(task_files, resident, metric, n, seed)

    # Drain both engines fully: one via k=1 batches, one via the
    # plain single-task path.  The sequences must be bit-identical.
    batched, plain = [], []
    while engine.has_pending:
        batch = engine.choose_many(site, 1)
        assert len(batch) == 1
        batched.append(batch[0].task_id)
    while twin.has_pending:
        task = twin.choose(site)
        twin.remove_task(task)
        plain.append(task.task_id)
    assert batched == plain
    assert engine.decisions == twin.decisions


def test_choose_many_respects_eligible_scope():
    engine = build_engine([{1}, {2, 3}, {4}, {5, 6}], [], "rest", 1, 0)
    drawn = engine.choose_many(0, 4, eligible={1, 3})
    assert sorted(task.task_id for task in drawn) == [1, 3]
    # The ineligible tasks are still pending for everyone else.
    rest = engine.choose_many(0, 4)
    assert sorted(task.task_id for task in rest) == [0, 2]


def test_choose_many_short_pending_yields_short_batch():
    engine = build_engine([{1}, {2}], [], "rest", 1, 0)
    assert len(engine.choose_many(0, 8)) == 2
    assert engine.choose_many(0, 3) == []


def test_choose_many_rejects_bad_k():
    engine = build_engine([{1}], [], "rest", 1, 0)
    with pytest.raises(ValueError):
        engine.choose_many(0, 0)
    with pytest.raises(ValueError):
        engine.choose_many(0, -2)


class _CountingScope(set):
    """An eligible container that counts how often it is scanned."""

    def __init__(self, ids):
        super().__init__(ids)
        self.iterations = 0
        self.membership_checks = 0

    def __iter__(self):
        self.iterations += 1
        return super().__iter__()

    def __contains__(self, task_id):
        self.membership_checks += 1
        return super().__contains__(task_id)


def test_choose_many_scans_a_large_eligible_set_once():
    """Regression: a job-scoped batch pull must intersect the eligible
    set with the pending set once per batch, not once per draw —
    re-scanning made ``choose_many(k)`` quadratic in the scope size."""
    size = 2000
    engine = build_engine([{task_id} for task_id in range(size)], [],
                          "rest", 1, 0)
    scope = _CountingScope(range(size))
    drawn = engine.choose_many(0, 64, eligible=scope)
    assert len(drawn) == 64
    # One pass to build the (eligible ∩ pending) working set; every
    # subsequent draw works off that set, never the original scope.
    assert scope.iterations == 1
    assert scope.membership_checks == 0


def test_choose_many_scoped_matches_per_draw_rescan():
    """The batched working-set optimization changes no decision: it
    must equal the old semantics (re-filter eligible every draw)."""
    task_files = [{1, 2}, {2, 3}, {3}, {4, 5}, {5}, {6}]
    eligible = {0, 2, 3, 5}
    engine = build_engine(task_files, [(0, 2), (0, 5)], "combined", 2, 9)
    twin = build_engine(task_files, [(0, 2), (0, 5)], "combined", 2, 9)
    drawn = engine.choose_many(0, 3, eligible=set(eligible))
    expected = []
    while len(expected) < 3 and any(tid in twin.pending
                                    for tid in eligible):
        task = twin.choose(0, eligible=eligible)
        twin.remove_task(task)
        expected.append(task)
    assert ([task.task_id for task in drawn]
            == [task.task_id for task in expected])
    assert engine._rng.getstate() == twin._rng.getstate()


def test_choose_many_is_deterministic_per_seed():
    draws = []
    for _ in range(2):
        engine = build_engine(
            [{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}],
            [(0, 2), (0, 4)], "combined", 2, 1234)
        draws.append([t.task_id for t in engine.choose_many(0, 5)])
    assert draws[0] == draws[1]
