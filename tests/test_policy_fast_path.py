"""The sublinear decision kernel must be bit-identical to the
reference scan.

``PolicyEngine(fast_path=True)`` answers ``choose`` through candidate
buckets (``overlap``/``rest``, unscoped) or the allocation-free
scoring loop (``combined``/``combined-literal`` and every scoped
pull); ``fast_path=False`` keeps the original TaskView-per-candidate
loop.  This suite pins the tentpole invariant: for any delta stream,
any metric, any n, scoped or not, both paths pick the *same task* and
leave the RNG in the *same state* — so a fast-path deployment replays
a reference-path history exactly.

Also here: the candidate-bucket invariants.  After every mutation the
buckets must agree with a naive recomputation from storage
(``naive_overlap``), and ranked retrieval must equal brute-force
sorting.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import CandidateBuckets
from repro.core.policy_engine import PolicyEngine
from repro.grid.job import Task

METRIC_NAMES = ["overlap", "rest", "combined", "combined-literal"]


def build_engine(task_files, metric, n, seed, fast_path,
                 sites=(0, 1)):
    tasks = {task_id: Task(task_id, frozenset(files))
             for task_id, files in enumerate(task_files)}
    engine = PolicyEngine(tasks, metric=metric, n=n,
                          rng=random.Random(seed), fast_path=fast_path)
    for site in sites:
        engine.attach_site(site)
    for task in tasks.values():
        engine.add_task(task)
    return engine, tasks


@st.composite
def delta_scenario(draw):
    """A workload plus a random op stream over it.

    Ops: file add / remove / reference at a site, a (possibly scoped)
    draw, and a draw-then-retire.  The stream is applied identically
    to a fast and a reference engine.
    """
    num_files = draw(st.integers(3, 24))
    num_tasks = draw(st.integers(1, 12))
    task_files = [
        draw(st.sets(st.integers(0, num_files - 1), min_size=1,
                     max_size=min(6, num_files)))
        for _ in range(num_tasks)
    ]
    metric = draw(st.sampled_from(METRIC_NAMES))
    n = draw(st.sampled_from([1, 2, 4]))
    seed = draw(st.integers(0, 2**16))
    ops = draw(st.lists(
        st.tuples(
            st.sampled_from(["add", "remove", "reference", "choose",
                             "choose-scoped", "retire"]),
            st.integers(0, 1),                 # site
            st.integers(0, num_files - 1),     # file id (file ops)
            st.integers(0, 2**16),             # scope-subset seed
        ),
        min_size=1, max_size=40))
    return task_files, metric, n, seed, ops


def apply_ops(fast, reference, ops):
    """Drive both engines through the op stream, asserting each draw."""
    for op, site, fid, scope_seed in ops:
        if op == "add":
            assert (fast.file_added(site, fid)
                    == reference.file_added(site, fid))
        elif op == "remove":
            assert (fast.file_removed(site, fid)
                    == reference.file_removed(site, fid))
        elif op == "reference":
            assert (fast.file_referenced(site, fid)
                    == reference.file_referenced(site, fid))
        elif not fast.has_pending:
            continue
        elif op == "choose":
            assert (fast.choose(site).task_id
                    == reference.choose(site).task_id)
        elif op == "choose-scoped":
            pending = sorted(fast.pending)
            scope_rng = random.Random(scope_seed)
            eligible = set(scope_rng.sample(
                pending, scope_rng.randint(1, len(pending))))
            assert (fast.choose(site, eligible=eligible).task_id
                    == reference.choose(site,
                                        eligible=eligible).task_id)
        else:  # retire
            chosen = fast.choose(site)
            twin = reference.choose(site)
            assert chosen.task_id == twin.task_id
            fast.remove_task(chosen)
            reference.remove_task(twin)


@given(delta_scenario())
@settings(max_examples=120, deadline=None)
def test_fast_path_is_decision_and_rng_identical(scenario):
    task_files, metric, n, seed, ops = scenario
    fast, _ = build_engine(task_files, metric, n, seed, fast_path=True)
    reference, _ = build_engine(task_files, metric, n, seed,
                                fast_path=False)
    apply_ops(fast, reference, ops)
    assert fast.decisions == reference.decisions
    assert fast._rng.getstate() == reference._rng.getstate()
    # Drain what's left through both paths: the whole tail must agree.
    while fast.has_pending:
        chosen = fast.choose(0)
        twin = reference.choose(0)
        assert chosen.task_id == twin.task_id
        fast.remove_task(chosen)
        reference.remove_task(twin)
    assert not reference.has_pending
    assert fast._rng.getstate() == reference._rng.getstate()


@given(delta_scenario())
@settings(max_examples=60, deadline=None)
def test_fast_path_batched_draws_are_identical(scenario):
    """``choose_many`` (which feeds TASK_BATCH) agrees across paths,
    scoped and unscoped."""
    task_files, metric, n, seed, ops = scenario
    fast, _ = build_engine(task_files, metric, n, seed, fast_path=True)
    reference, _ = build_engine(task_files, metric, n, seed,
                                fast_path=False)
    for op, site, fid, scope_seed in ops:
        if op == "add":
            fast.file_added(site, fid)
            reference.file_added(site, fid)
        elif op == "reference":
            fast.file_referenced(site, fid)
            reference.file_referenced(site, fid)
    k = max(1, len(task_files) // 2)
    eligible = None
    if ops[0][3] % 2 and fast.has_pending:
        scope_rng = random.Random(ops[0][3])
        pending = sorted(fast.pending)
        eligible = set(scope_rng.sample(
            pending, scope_rng.randint(1, len(pending))))
    drawn = fast.choose_many(0, k, eligible=eligible)
    expected = reference.choose_many(0, k, eligible=eligible)
    assert ([task.task_id for task in drawn]
            == [task.task_id for task in expected])
    assert fast._rng.getstate() == reference._rng.getstate()


# -- candidate-bucket invariants ---------------------------------------------

def assert_bucket_invariants(engine, tasks, sites=(0, 1)):
    """Buckets must mirror a naive storage rescan exactly."""
    index = engine._index
    for site in sites:
        expected_overlap = {}
        for tid in engine.pending:
            ov = index.naive_overlap(site, tasks[tid])
            if ov:
                expected_overlap[tid] = ov
        by_overlap = index.candidates_by_overlap(site)
        by_missing = index.candidates_by_missing(site)
        by_overlap.check()
        by_missing.check()
        assert by_overlap.as_dict() == expected_overlap
        assert by_missing.as_dict() == {
            tid: tasks[tid].num_files - ov
            for tid, ov in expected_overlap.items()}
        # The incremental totalRest still matches the rescan.
        assert abs(index.total_rest(site)
                   - index.naive_total_rest(site)) < 1e-9
        # Ranked retrieval == brute force over the same candidates.
        for count in (1, 2, 4):
            brute = sorted(((-ov, tid)
                            for tid, ov in expected_overlap.items()))
            expected_top = [(-key, tid) for key, tid in brute[:count]]
            assert by_overlap.top(count, reverse=True) == expected_top


@given(delta_scenario())
@settings(max_examples=80, deadline=None)
def test_bucket_invariants_hold_after_every_mutation(scenario):
    task_files, metric, n, seed, ops = scenario
    engine, tasks = build_engine(task_files, metric, n, seed,
                                 fast_path=True)
    assert_bucket_invariants(engine, tasks)
    for op, site, fid, _scope in ops:
        if op == "add":
            engine.file_added(site, fid)
        elif op == "remove":
            engine.file_removed(site, fid)
        elif op == "reference":
            engine.file_referenced(site, fid)
        elif op == "retire" and engine.has_pending:
            engine.remove_task(engine.choose(site))
        else:
            continue
        assert_bucket_invariants(engine, tasks)
    # Requeue everything retired: buckets fold re-added tasks back in.
    for tid, task in tasks.items():
        if not engine.is_pending(tid):
            engine.add_task(task)
            assert_bucket_invariants(engine, tasks)


def test_candidate_buckets_lazy_heap_survives_churn():
    """Move/remove/re-add cycles leave stale and duplicate heap
    entries behind; retrieval must never surface them."""
    buckets = CandidateBuckets()
    for tid in range(6):
        buckets.add(tid, 1)
    buckets.move(3, 2)          # stale "3" left under key 1
    buckets.remove(0)           # stale "0" left under key 1
    buckets.add(0, 1)           # duplicate heap entry for a live id
    assert buckets.top(10) == [(1, 0), (1, 1), (1, 2), (1, 4), (1, 5),
                               (2, 3)]
    # A second retrieval (stale entries now dropped) agrees.
    assert buckets.top(3) == [(1, 0), (1, 1), (1, 2)]
    assert buckets.key_of(3) == 2 and 3 in buckets
    buckets.remove(3)           # key-2 bucket empties and is dropped
    assert buckets.keys() == [1]
    assert len(buckets) == 5
    buckets.check()


def test_fast_path_flag_is_public_and_defaults_on():
    engine, _ = build_engine([{1}, {2}], "rest", 1, 0, fast_path=True)
    assert engine.fast_path is True
    reference, _ = build_engine([{1}, {2}], "rest", 1, 0,
                                fast_path=False)
    assert reference.fast_path is False
