"""Property-based tests (hypothesis) on core invariants.

Covers: LRU storage against a model, flow-network conservation, DES
determinism, scheduler completion under random workloads, ChooseTask
sampling bounds, and workload serialization round-trips.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.storage import SiteStorage
from repro.net import FlowNetwork, Topology
from repro.sim import Environment
from repro.workload.traces import job_from_dict, job_to_dict

from conftest import make_grid, make_job


# -- SiteStorage vs a reference model ------------------------------------

class ModelLru:
    """Reference LRU with pinning, kept deliberately naive."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.order = []  # least-recent first
        self.pins = {}

    def insert(self, fid):
        if fid in self.order:
            self.order.remove(fid)
            self.order.append(fid)
            return None
        evicted = None
        if len(self.order) >= self.capacity:
            for candidate in self.order:
                if self.pins.get(candidate, 0) == 0:
                    evicted = candidate
                    self.order.remove(candidate)
                    break
            if evicted is None:
                raise OverflowError
        self.order.append(fid)
        return evicted

    def touch(self, fid):
        if fid in self.order:
            self.order.remove(fid)
            self.order.append(fid)


@st.composite
def lru_ops(draw):
    capacity = draw(st.integers(1, 5))
    ops = draw(st.lists(st.tuples(
        st.sampled_from(["insert", "touch", "pin", "unpin"]),
        st.integers(0, 9)), max_size=40))
    return capacity, ops


@given(lru_ops())
@settings(max_examples=150, deadline=None)
def test_storage_matches_model(data):
    capacity, ops = data
    storage = SiteStorage(capacity)
    model = ModelLru(capacity)
    pins = {}
    for op, fid in ops:
        if op == "insert":
            try:
                expected = model.insert(fid)
            except OverflowError:
                from repro.grid.storage import StorageFullError
                with pytest.raises(StorageFullError):
                    storage.insert(fid)
                continue
            assert storage.insert(fid) == expected
        elif op == "touch":
            model.touch(fid)
            storage.touch(fid)
        elif op == "pin" and fid in model.order:
            model.pins[fid] = model.pins.get(fid, 0) + 1
            storage.pin(fid)
            pins[fid] = pins.get(fid, 0) + 1
        elif op == "unpin" and pins.get(fid, 0) > 0:
            model.pins[fid] -= 1
            storage.unpin(fid)
            pins[fid] -= 1
    assert list(storage.resident_files) == model.order


# -- flow network conservation --------------------------------------------

@st.composite
def flow_plan(draw):
    num_flows = draw(st.integers(1, 6))
    flows = [
        (draw(st.floats(1.0, 500.0)), draw(st.floats(0.0, 20.0)))
        for _ in range(num_flows)
    ]
    bandwidth = draw(st.floats(1.0, 50.0))
    return flows, bandwidth


@given(flow_plan())
@settings(max_examples=80, deadline=None)
def test_flows_all_complete_and_conserve_bytes(plan):
    flows, bandwidth = plan
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    topo.add_link("a", "b", bandwidth=bandwidth, latency=0.5)
    env = Environment()
    net = FlowNetwork(env, topo)
    stats = []

    def starter(env, size, delay):
        if delay:
            yield env.timeout(delay)
        result = yield net.transfer("a", "b", size)
        stats.append(result)

    for size, delay in flows:
        env.process(starter(env, size, delay))
    env.run()
    assert len(stats) == len(flows)
    assert net.active_flow_count == 0
    assert net.bytes_transferred == pytest.approx(
        sum(size for size, _d in flows))
    total_bytes = sum(size for size, _d in flows)
    # no flow can finish before its own serial minimum, and the whole
    # batch cannot beat the aggregate bandwidth bound
    for (size, delay), result in zip(flows, sorted(
            stats, key=lambda s: s.requested_at)):
        pass  # ordering of stats is completion order; check bounds below
    finish = max(s.finished_at for s in stats)
    assert finish >= total_bytes / bandwidth  # capacity bound
    for s in stats:
        assert s.finished_at >= s.started_at >= s.requested_at
        assert s.finished_at - s.started_at >= s.size / bandwidth - 1e-6


# -- DES determinism -------------------------------------------------------

@given(st.integers(0, 2**16), st.integers(2, 12))
@settings(max_examples=30, deadline=None)
def test_simulation_is_deterministic(seed, num_tasks):
    def run_once():
        rng = random.Random(seed)
        task_files = [
            set(rng.sample(range(30), rng.randint(1, 6)))
            for _ in range(num_tasks)
        ]
        job = make_job(task_files, num_files=30, flops=1e9)
        env = Environment()
        grid = make_grid(env, job, num_sites=2, workers_per_site=2,
                         capacity_files=20)
        from repro.core.worker_centric import WorkerCentricScheduler
        grid.attach_scheduler(WorkerCentricScheduler(
            job, metric="combined", n=2, rng=random.Random(seed)))
        result = grid.run()
        return (result.makespan, result.file_transfers, result.evictions)

    assert run_once() == run_once()


# -- schedulers complete random workloads ---------------------------------

@st.composite
def random_workload(draw):
    num_files = draw(st.integers(5, 40))
    num_tasks = draw(st.integers(1, 15))
    task_files = [
        draw(st.sets(st.integers(0, num_files - 1), min_size=1,
                     max_size=min(8, num_files)))
        for _ in range(num_tasks)
    ]
    scheduler = draw(st.sampled_from(
        ["rest", "overlap", "combined.2", "workqueue",
         "storage-affinity"]))
    capacity = draw(st.integers(10, 50))
    return task_files, num_files, scheduler, capacity


@given(random_workload())
@settings(max_examples=60, deadline=None)
def test_schedulers_complete_arbitrary_workloads(data):
    task_files, num_files, scheduler_name, capacity = data
    job = make_job(task_files, num_files=num_files)
    env = Environment()
    grid = make_grid(env, job, num_sites=2, capacity_files=capacity)
    from repro.core.registry import create_scheduler
    scheduler = create_scheduler(scheduler_name, job, random.Random(0))
    grid.attach_scheduler(scheduler)
    result = grid.run()
    assert scheduler.tasks_remaining == 0
    assert result.tasks_completed == len(job)
    # every distinct referenced file arrived at least once
    referenced = {fid for files in task_files for fid in files}
    assert result.file_transfers >= len(referenced) / 2  # >= 1 site's worth


# -- workload serialization round-trip -------------------------------------

@given(st.lists(st.sets(st.integers(0, 50), min_size=1, max_size=10),
                min_size=1, max_size=10),
       st.floats(1.0, 1e9))
@settings(max_examples=60, deadline=None)
def test_job_serialization_roundtrip(task_files, file_size):
    job = make_job(task_files, file_size=file_size)
    clone = job_from_dict(job_to_dict(job))
    assert len(clone) == len(job)
    for original, restored in zip(job, clone):
        assert original.files == restored.files
        assert original.flops == restored.flops
    assert clone.catalog.default_size == job.catalog.default_size
