"""Second property-test wave: deeper cross-layer invariants.

* link capacity is respected by every max-min rate assignment;
* Tiers topologies are well-formed for arbitrary parameters;
* metric orderings hold for arbitrary task views;
* data servers keep storage sane under random batch/cancel patterns;
* the ChooseTask(n) sampler picks only top-n tasks, at the right
  frequencies;
* reordering preserves multiset-of-inputs semantics.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (TaskView, combined_metric, overlap_metric,
                                rest_metric, rest_weight)
from repro.net import FlowNetwork, TiersParams, Topology, generate_tiers
from repro.sim import Environment


# -- flow rates never exceed link capacity ---------------------------------

@st.composite
def random_line_network(draw):
    """A chain network with random capacities and random flows."""
    hops = draw(st.integers(1, 4))
    bandwidths = [draw(st.floats(1.0, 100.0)) for _ in range(hops)]
    flows = []
    for _ in range(draw(st.integers(1, 8))):
        # flows span a random contiguous segment of the chain
        a = draw(st.integers(0, hops - 1))
        b = draw(st.integers(a, hops - 1))
        size = draw(st.floats(1.0, 300.0))
        start = draw(st.floats(0.0, 10.0))
        flows.append((a, b + 1, size, start))
    return bandwidths, flows


@given(random_line_network())
@settings(max_examples=80, deadline=None)
def test_rates_respect_link_capacity(data):
    bandwidths, flows = data
    topo = Topology()
    nodes = [topo.add_node(f"n{i}") for i in range(len(bandwidths) + 1)]
    links = [topo.add_link(nodes[i], nodes[i + 1], bandwidths[i], 0.01)
             for i in range(len(bandwidths))]
    env = Environment()
    net = FlowNetwork(env, topo)

    violations = []
    original = net._recompute_rates

    def checked():
        original()
        usage = {}
        for flow in net._flows.values():
            for link in flow.route.links:
                usage[link.link_id] = usage.get(link.link_id, 0.0) \
                    + flow.rate
        for link in links:
            used = usage.get(link.link_id, 0.0)
            if used > link.bandwidth * (1 + 1e-6):
                violations.append((link.link_id, used, link.bandwidth))

    net._recompute_rates = checked

    def starter(env, src, dst, size, delay):
        if delay:
            yield env.timeout(delay)
        yield net.transfer(src, dst, size)

    for a, b, size, start in flows:
        env.process(starter(env, nodes[a], nodes[b], size, start))
    env.run()
    assert violations == []
    assert net.active_flow_count == 0


# -- tiers topology invariants ---------------------------------------------

@given(st.integers(1, 30), st.integers(1, 8), st.integers(0, 2**20))
@settings(max_examples=60, deadline=None)
def test_tiers_always_wellformed(num_sites, wan_routers, seed):
    grid = generate_tiers(TiersParams(num_sites=num_sites,
                                      num_wan_routers=wan_routers),
                          seed=seed)
    topo = grid.topology
    assert topo.is_connected()
    assert len(grid.site_gateways) == num_sites
    for gateway in grid.site_gateways:
        route = topo.route(grid.file_server_node, gateway)
        assert route.links
        assert route.bottleneck_bandwidth > 0
    # no duplicated node names
    assert len(topo.nodes) == len(set(topo.nodes))


# -- metric orderings over arbitrary views -----------------------------------

view_strategy = st.builds(
    TaskView,
    task_id=st.integers(0, 1000),
    num_files=st.integers(1, 200),
    overlap=st.integers(0, 200),
    refsum=st.floats(0, 1e6),
    total_refsum=st.floats(0, 1e7),
    total_rest=st.floats(1e-6, 1e3),
).filter(lambda v: v.overlap <= v.num_files
         and v.refsum <= v.total_refsum + 1e-9)


@given(view_strategy)
@settings(max_examples=100, deadline=None)
def test_metric_values_finite_nonnegative(view):
    for metric in (overlap_metric, rest_metric, combined_metric):
        value = metric(view)
        assert value >= 0.0
        assert math.isfinite(value)


@given(view_strategy, st.integers(0, 199))
@settings(max_examples=100, deadline=None)
def test_rest_monotone_in_overlap(view, bump):
    """More overlap (fewer missing) never lowers the rest weight."""
    higher_overlap = min(view.num_files, view.overlap + bump)
    improved = TaskView(task_id=view.task_id, num_files=view.num_files,
                        overlap=higher_overlap, refsum=view.refsum,
                        total_refsum=view.total_refsum,
                        total_rest=view.total_rest)
    assert rest_metric(improved) >= rest_metric(view)


@given(st.integers(0, 500))
@settings(max_examples=60, deadline=None)
def test_rest_weight_monotone(missing):
    assert rest_weight(missing) >= rest_weight(missing + 1)


# -- data server under random batch/cancel patterns --------------------------

@st.composite
def batch_plan(draw):
    num_files = draw(st.integers(2, 15))
    batches = []
    for _ in range(draw(st.integers(1, 6))):
        files = draw(st.lists(st.integers(0, num_files - 1),
                              min_size=1, max_size=6, unique=True))
        cancel_after = draw(st.one_of(
            st.none(), st.floats(0.0, 10.0)))
        batches.append((files, cancel_after))
    capacity = draw(st.integers(6, 20))
    return num_files, batches, capacity


@given(batch_plan())
@settings(max_examples=60, deadline=None)
def test_data_server_storage_sane_under_churn(plan):
    from repro.analysis.trace import TraceBus
    from repro.grid.data_server import DataServer
    from repro.grid.file_server import FileServer
    from repro.grid.files import FileCatalog
    from repro.grid.storage import SiteStorage

    num_files, batches, capacity = plan
    topo = Topology()
    topo.add_node("fs")
    topo.add_node("site")
    topo.add_link("fs", "site", bandwidth=10.0, latency=0.5)
    env = Environment()
    net = FlowNetwork(env, topo)
    catalog = FileCatalog(num_files, default_size=5.0)
    server = DataServer(env, 0, "site", SiteStorage(capacity),
                        FileServer(env, net, "fs", catalog),
                        TraceBus(keep=False))

    pin_violations = []

    def check_pins(request):
        # at completion time every pinned file must be resident
        for fid in request.pinned:
            if fid not in server.storage:
                pin_violations.append((request.request_id, fid))

    requests = []
    for files, cancel_after in batches:
        request = server.submit(files, "w")
        requests.append(request)
        # a worker would compute then release; model instant release
        request.done.add_callback(
            lambda _e, req=request: (check_pins(req),
                                     server.release(req)))
        if cancel_after is not None:
            def canceller(env, req=request, delay=cancel_after):
                yield env.timeout(delay)
                server.cancel(req)
            env.process(canceller(env))
    env.run()

    storage = server.storage
    assert len(storage) <= capacity
    assert pin_violations == []
    assert not any(storage.is_pinned(fid)
                   for fid in storage.resident_files)


# -- ChooseTask(n) sampling ---------------------------------------------------

def test_choose_task_frequency_matches_weights():
    """Over many seeds, top-2 sampling tracks the 2:1 weight ratio."""
    from repro.core.worker_centric import WorkerCentricScheduler
    from conftest import make_grid, make_job
    from repro.analysis.trace import TaskAssigned, TraceBus

    # rest weights: task0 -> 1/2 (2 missing), task1 -> 1/4 (4 missing)
    job = make_job([{0, 1}, {2, 3, 4, 5}])
    picks = {0: 0, 1: 0}
    trials = 300
    for seed in range(trials):
        env = Environment()
        trace = TraceBus()
        grid = make_grid(env, job, trace=trace, num_sites=1)
        grid.attach_scheduler(WorkerCentricScheduler(
            job, metric="rest", n=2, rng=random.Random(seed)))
        grid.run()
        picks[trace.of_type(TaskAssigned)[0].task_id] += 1
    fraction = picks[0] / trials
    assert fraction == pytest.approx(2 / 3, abs=0.07)


# -- reorder preserves content -----------------------------------------------

@given(st.lists(st.sets(st.integers(0, 30), min_size=1, max_size=6),
                min_size=1, max_size=12),
       st.sampled_from(["shuffled", "striped"]),
       st.integers(0, 1000))
@settings(max_examples=60, deadline=None)
def test_reorder_preserves_multiset(task_files, order, seed):
    from repro.workload.ordering import reorder_job
    from conftest import make_job
    job = make_job(task_files)
    reordered = reorder_job(job, order, seed=seed)
    assert sorted(map(sorted, (t.files for t in job))) \
        == sorted(map(sorted, (t.files for t in reordered)))
    assert [t.task_id for t in reordered] == list(range(len(job)))
