"""Batched assignment end to end: TASK_BATCH, leases, fault paths.

Service-level: a batched pull draws exactly
``PolicyEngine.choose_many``'s without-replacement sequence with one
lease per task; the refusal reasons stay the closed ``NO_TASK`` enum.
Wire-level: a fleet pulling with ``batch=k`` completes a job exactly
once; a worker dying mid-batch — abrupt disconnect or silent stall —
gets *all* k leases requeued with zero lost or duplicated tasks; a
v2 client sending ``max_tasks`` to a server that predates the field
degrades to single-task pulls.
"""

import asyncio
import random

import pytest

from repro.core.policy_engine import PolicyEngine
from repro.grid.job import Task
from repro.serve import messages, protocol
from repro.serve.client import SchedulerClient, WorkerClient
from repro.serve.loadgen import serve_and_load
from repro.serve.server import SchedulerServer
from repro.serve.service import SchedulerService, ServiceError

from test_serve_e2e import TIMEOUT, coadd_job, raw_call, raw_connection


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=TIMEOUT))


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_service(**kwargs):
    kwargs.setdefault("clock", FakeClock())
    return SchedulerService(**kwargs)


def submit(service, specs, job_id=None):
    return service.submit_job([{"files": files, "flops": flops}
                               for files, flops in specs],
                              job_id=job_id)


def pull_batch(service, k, worker="w0", site=0, job_id=None):
    """Synchronous request_tasks; returns the delivered list, the
    NO_TASK reason string, or "parked"."""
    box = []
    service.request_tasks(worker, site, k, box.append, job_id=job_id)
    return box[0] if box else "parked"


# -- service semantics -------------------------------------------------------

def test_batched_pull_matches_engine_choose_many():
    """The service's batch draw is exactly choose_many's sequence."""
    specs = [([1, 2], 0.0), ([2, 3], 0.0), ([3, 4], 0.0),
             ([4, 5], 0.0), ([1, 5], 0.0), ([2, 5], 0.0)]
    seed, metric, n, k = 11, "combined", 2, 4

    service = make_service(metric=metric, n=n, seed=seed)
    submit(service, specs)
    service.file_delta(0, added=[2, 5], removed=[], referenced=[])

    twin = PolicyEngine(
        {i: Task(i, frozenset(files)) for i, (files, _) in
         enumerate(specs)},
        metric=metric, n=n, rng=random.Random(seed))
    twin.attach_site(0)
    for i, (files, _) in enumerate(specs):
        twin.add_task(Task(i, frozenset(files)))
    twin.file_added(0, 2)
    twin.file_added(0, 5)

    granted = pull_batch(service, k)
    assert [a.task.task_id for a in granted] \
        == [t.task_id for t in twin.choose_many(0, k)]
    # One lease per task, all distinct, all live.
    lease_ids = [a.lease_id for a in granted]
    assert len(set(lease_ids)) == k
    assert service.active_leases == k
    assert service.outstanding == k


def test_batched_pull_grants_at_most_the_queue():
    service = make_service()
    submit(service, [([1], 0.0), ([2], 0.0), ([3], 0.0)])
    granted = pull_batch(service, 8)
    assert len(granted) == 3
    assert service.queue_depth == 0
    snap = service.stats_snapshot()
    assert snap["batches"] == {"requests": 1, "tasks": 3,
                               "sizes": {"3": 1}}


def test_batched_pull_k1_equals_single_task_path():
    """max_tasks=1 makes the same decisions as request_task."""
    specs = [([1, 2], 0.0), ([2, 3], 0.0), ([3], 0.0), ([1, 4], 0.0)]
    batched = make_service(metric="rest", n=2, seed=3)
    plain = make_service(metric="rest", n=2, seed=3)
    submit(batched, specs)
    submit(plain, specs)

    batched_order, plain_order = [], []
    for _ in specs:
        batched_order.append(pull_batch(batched, 1)[0].task.task_id)
        box = []
        plain.request_task("w0", 0, box.append)
        plain_order.append(box[0].task.task_id)
    assert batched_order == plain_order


def test_batched_refusals_use_the_closed_reason_enum():
    service = make_service()
    job_id = submit(service, [([1], 0.0)])["job_id"]
    granted = pull_batch(service, 4, job_id=job_id)
    assert len(granted) == 1
    assignment = granted[0]
    service.task_done("w0", assignment.task.task_id,
                      assignment.lease_id)
    # Job done: the batched pull is refused with the same enum value.
    reason = pull_batch(service, 4, job_id=job_id)
    assert reason == protocol.REASON_JOB_DONE
    assert reason in protocol.NO_TASK_REASONS
    # Idle and draining likewise.
    assert pull_batch(service, 4) == protocol.REASON_IDLE
    service.drain()
    assert pull_batch(service, 4) == protocol.REASON_DRAINING
    assert {protocol.REASON_IDLE, protocol.REASON_DRAINING} \
        <= protocol.NO_TASK_REASONS


def test_batched_pull_parks_until_work_arrives():
    service = make_service()
    box = []
    service.request_tasks("w0", 0, 3, box.append)
    assert box == [] and service.parked_workers == 1
    submit(service, [([1], 0.0), ([2], 0.0)])
    assert len(box) == 1 and len(box[0]) == 2


def test_request_tasks_rejects_bad_max_tasks():
    service = make_service()
    for bad in (0, -1, True, "8", 1.5):
        with pytest.raises(ServiceError):
            service.request_tasks("w0", 0, bad, lambda _: None)


def test_disconnect_mid_batch_requeues_every_unfinished_lease():
    service = make_service()
    submit(service, [([i], 0.0) for i in range(6)])
    granted = pull_batch(service, 4, worker="w0")
    assert len(granted) == 4
    # One task lands before the worker dies; the other three must all
    # come back, none twice, none lost.
    done = granted[0]
    assert service.task_done("w0", done.task.task_id,
                             done.lease_id).accepted
    assert service.disconnect("w0") == 3
    assert service.queue_depth == 2 + 3
    assert service.active_leases == 0

    seen = []
    while True:
        outcome = pull_batch(service, 4, worker="w1")
        if not isinstance(outcome, list):
            assert outcome == protocol.REASON_IDLE
            break
        for assignment in outcome:
            assert service.task_done("w1", assignment.task.task_id,
                                     assignment.lease_id).accepted
            seen.append(assignment.task.task_id)
    assert sorted(seen + [done.task.task_id]) == list(range(6))
    snap = service.stats_snapshot()
    assert snap["completions"] == 6
    assert snap["duplicate_completions"] == 0
    assert snap["stale_completions"] == 0
    assert snap["requeues"] == 3


def test_lease_expiry_mid_batch_requeues_every_lease():
    clock = FakeClock()
    service = make_service(clock=clock, lease_ttl=10.0)
    submit(service, [([i], 0.0) for i in range(5)])
    granted = pull_batch(service, 4, worker="w0")
    assert len(granted) == 4
    clock.advance(10.1)
    assert service.expire_leases() == 4
    assert service.active_leases == 0
    assert service.queue_depth == 5

    # The silent worker's late completions are all rejected.
    for assignment in granted:
        result = service.task_done("w0", assignment.task.task_id,
                                   assignment.lease_id)
        assert not result.accepted and result.reason == "stale-lease"

    rescued = pull_batch(service, 5, worker="w1")
    assert len(rescued) == 5
    for assignment in rescued:
        assert service.task_done("w1", assignment.task.task_id,
                                 assignment.lease_id).accepted
    snap = service.stats_snapshot()
    assert snap["completions"] == 5
    assert snap["duplicate_completions"] == 0
    assert snap["leases"]["expiries"] == 4
    assert snap["stale_completions"] == 4


# -- wire shape --------------------------------------------------------------

def test_task_batch_reply_shape_and_no_task_reason():
    async def scenario():
        service = SchedulerService(metric="rest", n=1)
        server = SchedulerServer(service)
        await server.start()
        try:
            async with SchedulerClient(server.host,
                                       server.port) as control:
                await control.submit([{"files": [1], "flops": 0.0},
                                      {"files": [2], "flops": 0.0}])
            reader, writer = await raw_connection(server)
            reply = await raw_call(reader, writer, messages.Hello(
                worker="z", site=0,
                protocol=protocol.PROTOCOL_VERSION))
            assert isinstance(reply, messages.Welcome)
            reply = await raw_call(reader, writer,
                                   messages.RequestTask(max_tasks=8))
            assert isinstance(reply, messages.TaskBatch)
            assert len(reply.tasks) == 2
            assignments = reply.assignments()
            assert all(isinstance(a, messages.TaskAssign)
                       for a in assignments)
            assert all(a.lease_ttl == service.lease_ttl
                       for a in assignments)
            for assignment in assignments:
                ack = await raw_call(reader, writer, messages.TaskDone(
                    task_id=assignment.task_id,
                    lease_id=assignment.lease_id))
                assert isinstance(ack, messages.Ack) and ack.accepted
            # The batched refusal still carries the closed enum.
            reply = await raw_call(reader, writer,
                                   messages.RequestTask(max_tasks=8))
            assert isinstance(reply, messages.NoTask)
            assert reply.reason in protocol.NO_TASK_REASONS
            writer.close()
        finally:
            await server.stop()

    run(scenario())


def test_e2e_batched_fleet_completes_job_exactly_once():
    job = coadd_job(60)
    report = run(serve_and_load(job, workers=4, sites=4,
                                metric="combined", n=2, seed=42,
                                capacity_files=300, batch=8))
    stats = report["stats"]
    assert report["tasks_done"] == len(job)
    assert stats["completions"] == len(job)
    assert stats["duplicate_completions"] == 0
    assert stats["stale_completions"] == 0
    assert stats["leases"]["granted"] == len(job)
    assert stats["leases"]["active"] == 0
    assert stats["batches"]["tasks"] == len(job)
    assert stats["batches"]["requests"] >= len(job) // 8
    assert sum(stats["batches"]["sizes"].values()) \
        == stats["batches"]["requests"]
    assert report["job_status"]["done"]


def test_e2e_delta_aggregation_coalesces_colocated_workers():
    job = coadd_job(60)
    report = run(serve_and_load(job, workers=8, sites=2,
                                metric="combined", n=2, seed=1,
                                capacity_files=300, batch=4,
                                aggregate_deltas=True))
    assert report["tasks_done"] == len(job)
    aggregation = report["delta_aggregation"]
    assert aggregation["enabled"]
    assert len(aggregation["sites"]) == 2
    # Co-located workers over a shared Coadd working set must overlap.
    assert aggregation["duplicates_suppressed"] > 0
    # And the server never saw a redundant add/remove: the aggregator
    # already dropped them client-side.
    assert report["stats"]["delta_dedup"] == {"duplicate_adds": 0,
                                              "duplicate_removes": 0}


def test_e2e_abrupt_death_mid_batch_requeues_all_leases():
    async def scenario():
        service = SchedulerService(metric="rest", n=1)
        server = SchedulerServer(service)
        await server.start()
        try:
            async with SchedulerClient(server.host,
                                       server.port) as control:
                handle = await control.submit(
                    [{"files": [i], "flops": 0.0} for i in range(12)])

                reader, writer = await raw_connection(server)
                await raw_call(reader, writer, messages.Hello(
                    worker="victim", site=0,
                    protocol=protocol.PROTOCOL_VERSION))
                reply = await raw_call(reader, writer,
                                       messages.RequestTask(max_tasks=4))
                assert isinstance(reply, messages.TaskBatch)
                assert len(reply.tasks) == 4
                # Die mid-batch: close the socket with all 4 leases
                # held and nothing completed.
                writer.close()
                await writer.wait_closed()
                for _ in range(100):
                    if service.outstanding == 0:
                        break
                    await asyncio.sleep(0.01)
                assert service.outstanding == 0
                assert service.queue_depth == 12
                assert service.active_leases == 0

                rescuer = WorkerClient(server.host, server.port,
                                       worker="rescue", site=0,
                                       job_id=handle.job_id, batch=4)
                summary = await rescuer.run()
                assert summary["tasks_done"] == 12
                stats = await control.stats()
        finally:
            await server.stop()
        assert stats["completions"] == 12
        assert stats["duplicate_completions"] == 0
        assert stats["stale_completions"] == 0
        assert stats["requeues"] == 4
        assert stats["leases"]["granted"] == 16
        assert stats["leases"]["active"] == 0

    run(scenario())


def test_e2e_silent_death_mid_batch_expires_all_leases():
    async def scenario():
        service = SchedulerService(metric="rest", n=1, lease_ttl=0.3)
        server = SchedulerServer(service, sweep_interval=0.02)
        await server.start()
        try:
            async with SchedulerClient(server.host,
                                       server.port) as control:
                handle = await control.submit(
                    [{"files": [i], "flops": 0.0} for i in range(10)])

                # The zombie pulls a batch, then goes silent without
                # closing its connection (no heartbeats, no
                # completions) — only the sweeper can reclaim it.
                reader, writer = await raw_connection(server)
                await raw_call(reader, writer, messages.Hello(
                    worker="zombie", site=0,
                    protocol=protocol.PROTOCOL_VERSION))
                reply = await raw_call(reader, writer,
                                       messages.RequestTask(max_tasks=4))
                assert isinstance(reply, messages.TaskBatch)
                batch = reply.assignments()
                assert len(batch) == 4

                for _ in range(200):
                    if service.stats.lease_expiries >= 4:
                        break
                    await asyncio.sleep(0.02)
                assert service.stats.lease_expiries == 4
                assert service.queue_depth == 10

                rescuer = WorkerClient(server.host, server.port,
                                       worker="rescue", site=0,
                                       job_id=handle.job_id, batch=4)
                summary = await rescuer.run()
                assert summary["tasks_done"] == 10

                # The zombie wakes up and reports its whole batch:
                # every completion is rejected (the rescuer already
                # finished those tasks), so nothing double-counts.
                for assignment in batch:
                    ack = await raw_call(
                        reader, writer, messages.TaskDone(
                            task_id=assignment.task_id,
                            lease_id=assignment.lease_id))
                    assert isinstance(ack, messages.Ack)
                    assert not ack.accepted
                    assert ack.reason == "already-complete"
                writer.close()
                stats = await control.stats()
        finally:
            await server.stop()
        assert stats["completions"] == 10
        assert stats["duplicate_completions"] == 4
        assert stats["stale_completions"] == 0
        assert stats["leases"]["expiries"] == 4
        assert stats["leases"]["active"] == 0

    run(scenario())


# -- degrade to single task against a predating server -----------------------

class LegacyServer:
    """A v2 server from before ``max_tasks``/``TASK_BATCH`` existed.

    It decodes requests with the same unknown-field tolerance the
    typed layer has always had, so REQUEST_TASK {max_tasks: k} parses
    fine — but it only ever answers a plain single TASK.
    """

    def __init__(self, num_tasks):
        self.remaining = list(range(num_tasks))
        self.completed = []
        self.lease_seq = 0
        self.server = None

    async def start(self):
        self.server = await asyncio.start_server(
            self.handle, "127.0.0.1", 0)
        self.port = self.server.sockets[0].getsockname()[1]

    async def stop(self):
        self.server.close()
        await self.server.wait_closed()

    async def handle(self, reader, writer):
        while True:
            line = await reader.readline()
            if not line:
                break
            payload = protocol.decode_line(line)
            kind = payload["type"]
            if kind == protocol.HELLO:
                reply = messages.Welcome(
                    server="legacy", metric="rest", n=1,
                    protocol=protocol.PROTOCOL_VERSION,
                    lease_ttl=30.0, heartbeat_interval=10.0)
            elif kind == protocol.REQUEST_TASK:
                # A pre-batching server: 'max_tasks' is an unknown
                # field it silently ignores.
                if self.remaining:
                    task_id = self.remaining.pop(0)
                    self.lease_seq += 1
                    reply = messages.TaskAssign(
                        task_id=task_id, files=[task_id], flops=0.0,
                        lease_id=self.lease_seq, lease_ttl=30.0,
                        job_id=0)
                else:
                    reply = messages.NoTask(
                        reason=protocol.REASON_IDLE)
            elif kind == protocol.TASK_DONE:
                self.completed.append(payload["task_id"])
                reply = messages.Ack(accepted=True)
            elif kind == protocol.FILE_DELTA:
                reply = messages.Ack()
            elif kind == protocol.HEARTBEAT:
                reply = messages.HeartbeatAck(
                    renewed=payload.get("lease_ids", []), expired=[])
            else:
                reply = messages.Error(error=f"unexpected {kind}")
            writer.write(reply.encode())
            await writer.drain()
            if isinstance(reply, messages.NoTask):
                break
        writer.close()


def test_batched_client_degrades_against_legacy_server():
    """Unknown-field tolerance regression: REQUEST_TASK {max_tasks}
    against a predating server falls back to single-task pulls and
    still drains the queue exactly once."""
    async def scenario():
        legacy = LegacyServer(num_tasks=7)
        await legacy.start()
        try:
            worker = WorkerClient("127.0.0.1", legacy.port,
                                  worker="new", site=0, batch=8)
            summary = await worker.run()
        finally:
            await legacy.stop()
        assert summary["tasks_done"] == 7
        assert summary["stop_reason"] == protocol.REASON_IDLE
        # Each degraded "batch" carried exactly one task.
        assert summary["batches_pulled"] == 7
        assert sorted(legacy.completed) == list(range(7))

    run(scenario())
