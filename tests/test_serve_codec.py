"""The protocol-v3 codec layer: framing, negotiation, fallback.

Three groups:

* **round trips** — a hypothesis property per registered message
  class, through both codecs (``json-2`` and ``binary-1``), plus a
  coverage guard so a future message class cannot ship without a
  round-trip strategy;
* **framing** — incremental feeds (byte-at-a-time, arbitrary splits,
  concatenated bursts), truncation, and the clean ``ProtocolError``
  contract for oversized frames, bad magic, bad version, unknown type
  ids, and the deliver-prefix-then-reraise rule;
* **negotiation e2e** — a mixed-codec fleet against one server, and a
  v2-era JSON-only client (no ``codecs`` offer) completing a full run
  against a v3 server, which is the compatibility claim of the PR.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exp import ExperimentConfig
from repro.exp.runner import build_job
from repro.serve import messages, protocol
from repro.serve.client import SchedulerClient, WorkerClient
from repro.serve.codec import (BinaryCodec, Codec, JsonLinesCodec,
                               make_codec)
from repro.serve.server import SchedulerServer
from repro.serve.service import SchedulerService

TIMEOUT = 60


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=TIMEOUT))


# -- strategies, one per registered message class ----------------------------

_ids = st.integers(min_value=0, max_value=2**63 - 1)
_id_lists = st.lists(_ids, max_size=4)
_numbers = st.floats(min_value=0.0, max_value=1e18, allow_nan=False,
                     allow_infinity=False)
_names = st.text(min_size=1, max_size=12)
_texts = st.text(max_size=24)

_batch_entries = st.fixed_dictionaries({
    "task_id": _ids,
    "files": _id_lists,
    "flops": _numbers,
    "lease_id": _ids,
    "job_id": _ids,
})
_shard_entries = st.fixed_dictionaries({
    "shard": st.integers(min_value=0, max_value=64),
    "host": _names,
    "port": st.integers(min_value=1, max_value=65535),
})
_stats_values = st.one_of(st.none(), st.booleans(), _ids, _numbers,
                          _texts)
# One thief-side residency summary: files[i] referenced refs[i] times
# (the validator rejects length mismatches, so draw the size once).
_refsum_entries = st.integers(min_value=0, max_value=4).flatmap(
    lambda size: st.fixed_dictionaries({
        "site": st.integers(min_value=0, max_value=1000),
        "files": st.lists(_ids, min_size=size, max_size=size),
        "refs": st.lists(st.integers(min_value=0, max_value=1000),
                         min_size=size, max_size=size),
    }))
# A bare exported task spec (no lease — the thief grants its own).
_steal_specs = st.fixed_dictionaries({
    "task_id": _ids, "job_id": _ids,
    "files": _id_lists, "flops": _numbers,
})

CLASS_STRATEGIES = {
    messages.Hello: st.builds(
        messages.Hello, worker=_names,
        site=st.integers(min_value=0, max_value=1000),
        protocol=st.integers(min_value=1, max_value=9),
        accept_redirect=st.none() | st.booleans(),
        codecs=st.none() | st.lists(_names, max_size=3)),
    messages.RequestTask: st.builds(
        messages.RequestTask, job_id=st.none() | _ids,
        max_tasks=st.none() | st.integers(min_value=1, max_value=64)),
    messages.TaskDone: st.builds(
        messages.TaskDone, task_id=_ids, lease_id=_ids),
    messages.Heartbeat: st.builds(
        messages.Heartbeat, lease_ids=st.none() | _id_lists),
    messages.FileDelta: st.builds(
        messages.FileDelta, added=_id_lists, removed=_id_lists,
        referenced=_id_lists, site=st.none() | _ids),
    messages.JobSubmit: st.builds(
        messages.JobSubmit,
        tasks=st.lists(st.fixed_dictionaries(
            {"files": _id_lists, "flops": _numbers}), max_size=3),
        job_id=st.none() | _ids,
        weight=st.none() | st.floats(min_value=0.125, max_value=1e6,
                                     allow_nan=False,
                                     allow_infinity=False)),
    messages.JobStatusRequest: st.builds(
        messages.JobStatusRequest, job_id=_ids),
    messages.StatsRequest: st.just(messages.StatsRequest()),
    messages.Drain: st.just(messages.Drain()),
    messages.StealRequest: st.builds(
        messages.StealRequest,
        max_tasks=st.integers(min_value=1, max_value=64),
        site_refsums=st.lists(_refsum_entries, max_size=3)),
    messages.StealAck: st.builds(messages.StealAck, export_id=_ids),
    messages.StealDone: st.builds(
        messages.StealDone,
        task_ids=st.lists(_ids, min_size=1, max_size=4)),
    messages.Welcome: st.builds(
        messages.Welcome, server=_names, metric=_names,
        n=st.integers(min_value=1, max_value=16),
        protocol=st.integers(min_value=1, max_value=9),
        lease_ttl=_numbers, heartbeat_interval=_numbers,
        codec=st.none() | _names),
    messages.TaskAssign: st.builds(
        messages.TaskAssign, task_id=_ids, files=_id_lists,
        flops=_numbers, lease_id=_ids, lease_ttl=_numbers,
        job_id=_ids),
    messages.TaskBatch: st.builds(
        messages.TaskBatch,
        tasks=st.lists(_batch_entries, min_size=1, max_size=4),
        lease_ttl=_numbers),
    messages.NoTask: st.builds(
        messages.NoTask,
        reason=st.sampled_from(sorted(protocol.NO_TASK_REASONS))),
    messages.Ack: st.builds(
        messages.Ack, accepted=st.booleans(),
        reason=st.none() | _texts, draining=st.none() | st.booleans(),
        retry_after=st.none() | _numbers),
    messages.HeartbeatAck: st.builds(
        messages.HeartbeatAck, renewed=_id_lists, expired=_id_lists),
    messages.JobAccepted: st.builds(
        messages.JobAccepted, job_id=_ids, task_ids=_id_lists),
    messages.JobStatusReply: st.builds(
        messages.JobStatusReply, job_id=_ids, tasks=_ids,
        completed=_ids, pending=_ids, outstanding=_ids,
        done=st.booleans()),
    messages.StatsReply: st.builds(
        messages.StatsReply,
        stats=st.dictionaries(st.text(max_size=8), _stats_values,
                              max_size=4)),
    messages.Redirect: st.builds(
        messages.Redirect,
        shards=st.lists(_shard_entries, min_size=1, max_size=3),
        shard_count=st.integers(min_value=1, max_value=64),
        partition=_names, codec=st.none() | _names),
    messages.Error: st.builds(messages.Error, error=_texts),
    # An empty grant is a refusal (export_id optional); a grant with
    # tasks must carry the export_id the thief will ack.
    messages.StealGrant: st.one_of(
        st.builds(messages.StealGrant, tasks=st.just([]),
                  export_id=st.none() | _ids),
        st.builds(messages.StealGrant,
                  tasks=st.lists(_steal_specs, min_size=1,
                                 max_size=3),
                  export_id=_ids)),
}

_any_message = st.one_of(*CLASS_STRATEGIES.values())


def test_every_registered_class_has_a_strategy():
    """A new message class must ship with a round-trip strategy."""
    registered = (set(messages.ClientMessage.REGISTRY.values())
                  | set(messages.ServerMessage.REGISTRY.values()))
    assert registered == set(CLASS_STRATEGIES)


def _decoder_for(message, codec_name):
    side = ("client" if isinstance(message, messages.ClientMessage)
            else "server")
    return make_codec(codec_name, decodes=side)


@pytest.mark.parametrize("codec_name",
                         [protocol.CODEC_JSON, protocol.CODEC_BINARY])
@given(message=_any_message)
@settings(max_examples=60, deadline=None)
def test_round_trip(codec_name, message):
    decoder = _decoder_for(message, codec_name)
    encoded = decoder.encode(message)
    decoded = decoder.feed(encoded)
    assert decoded == [message]
    assert decoder.buffered == 0


@given(batch=st.lists(_any_message, min_size=1, max_size=6),
       codec_name=st.sampled_from([protocol.CODEC_JSON,
                                   protocol.CODEC_BINARY]),
       chunk=st.integers(min_value=1, max_value=17))
@settings(max_examples=40, deadline=None)
def test_split_and_concatenated_feeds(batch, codec_name, chunk):
    """One pipelined burst, fed in arbitrary chunk sizes, decodes to
    the same messages in the same order."""
    # Same-direction burst only: a real connection decodes one side.
    side = ("client" if isinstance(batch[0], messages.ClientMessage)
            else "server")
    batch = [m for m in batch
             if isinstance(m, messages.ClientMessage) == (side == "client")]
    decoder = make_codec(codec_name, decodes=side)
    stream = b"".join(decoder.encode(m) for m in batch)
    out = []
    for start in range(0, len(stream), chunk):
        out.extend(decoder.feed(stream[start:start + chunk]))
    assert out == batch
    assert decoder.buffered == 0


def test_byte_at_a_time_feed():
    decoder = BinaryCodec(decodes="server")
    expected = [messages.Ack(),
                messages.NoTask(reason=protocol.REASON_IDLE),
                messages.TaskAssign(task_id=1, files=[2, 3], flops=1.0,
                                    lease_id=9, lease_ttl=30.0,
                                    job_id=0)]
    stream = b"".join(decoder.encode(m) for m in expected)
    out = []
    for index in range(len(stream)):
        out.extend(decoder.feed(stream[index:index + 1]))
    assert out == expected


# -- framing error contract --------------------------------------------------

def test_truncated_frame_waits_for_more_bytes():
    codec = BinaryCodec(decodes="client")
    frame = codec.encode(messages.TaskDone(task_id=1, lease_id=2))
    assert codec.feed(frame[:-3]) == []
    assert codec.buffered == len(frame) - 3
    assert codec.feed(frame[-3:]) == [
        messages.TaskDone(task_id=1, lease_id=2)]


def test_bad_magic_raises_protocol_error():
    codec = BinaryCodec(decodes="client")
    with pytest.raises(protocol.ProtocolError, match="magic"):
        codec.feed(b"\x00\x00" + b"\x01\x02" + b"\x00" * 4)


def test_bad_version_raises_protocol_error():
    codec = BinaryCodec(decodes="client")
    frame = bytearray(codec.encode(messages.Drain()))
    frame[2] ^= 0xFF  # corrupt the version byte
    with pytest.raises(protocol.ProtocolError, match="version"):
        codec.feed(bytes(frame))


def test_unknown_type_id_raises_protocol_error():
    codec = BinaryCodec(decodes="client")
    frame = bytearray(codec.encode(messages.Drain()))
    frame[3] = 0xEE  # no such type id
    with pytest.raises(protocol.ProtocolError, match="type id"):
        codec.feed(bytes(frame))


def test_oversized_frame_rejected_on_decode():
    small = BinaryCodec(decodes="client", max_frame_bytes=16)
    big = BinaryCodec(decodes="client")  # default cap, will encode
    frame = big.encode(messages.FileDelta(added=list(range(20))))
    with pytest.raises(protocol.ProtocolError, match="exceeds"):
        small.feed(frame)


def test_oversized_frame_rejected_on_encode():
    codec = BinaryCodec(decodes="client", max_frame_bytes=16)
    with pytest.raises(protocol.ProtocolError, match="exceeds"):
        codec.encode(messages.FileDelta(added=list(range(20))))


def test_oversized_json_line_rejected_while_buffering():
    codec = JsonLinesCodec(decodes="client", max_message_bytes=32)
    with pytest.raises(protocol.ProtocolError, match="exceeds"):
        codec.feed(b"x" * 64)  # no newline yet, already hopeless


def test_clean_prefix_delivered_then_error_reraised():
    """A pipelined burst whose tail is garbage still delivers the good
    prefix; the error surfaces on the next feed, not silently."""
    codec = BinaryCodec(decodes="client")
    good = codec.encode(messages.TaskDone(task_id=7, lease_id=8))
    garbage = b"\xff\xff\xff\xff\xff\xff\xff\xff"
    out = codec.feed(good + garbage)
    assert out == [messages.TaskDone(task_id=7, lease_id=8)]
    with pytest.raises(protocol.ProtocolError):
        codec.feed(b"")


def test_make_codec_rejects_unknown_name():
    with pytest.raises(protocol.ProtocolError):
        make_codec("zstd-9", decodes="client")


def test_codec_is_the_public_interface():
    assert issubclass(JsonLinesCodec, Codec)
    assert issubclass(BinaryCodec, Codec)
    assert JsonLinesCodec.name == protocol.CODEC_JSON
    assert BinaryCodec.name == protocol.CODEC_BINARY


# -- negotiation, end to end -------------------------------------------------

def _job(num_tasks=24, seed=0):
    return build_job(ExperimentConfig(num_tasks=num_tasks,
                                      capacity_files=400, seed=seed))


def test_mixed_codec_fleet_completes_one_job():
    """Binary and JSON workers share one server and one job; each
    connection independently negotiates its own framing."""
    async def scenario():
        service = SchedulerService(metric="combined", n=2, seed=1)
        server = SchedulerServer(service)
        await server.start()
        try:
            async with SchedulerClient(server.host, server.port,
                                       name="submit",
                                       codec="binary") as control:
                handle = await control.submit(_job(24))
                fleet = [
                    WorkerClient(server.host, server.port,
                                 worker=f"w{index}", site=index % 2,
                                 capacity_files=400,
                                 job_id=handle.job_id, batch=4,
                                 codec=codec)
                    for index, codec in enumerate(
                        ["binary", "json", "auto", "json"])
                ]
                summaries = await asyncio.gather(
                    *(worker.run() for worker in fleet))
                status = await handle.status()
        finally:
            await server.stop()
        assert status["done"]
        assert sum(s["tasks_done"] for s in summaries) == 24
        negotiated = [s["codec"] for s in summaries]
        assert negotiated[0] == protocol.CODEC_BINARY
        assert negotiated[1] == protocol.CODEC_JSON
        assert negotiated[2] == protocol.CODEC_BINARY  # auto prefers it
        assert negotiated[3] == protocol.CODEC_JSON

    run(scenario())


def test_v2_json_only_client_completes_against_v3_server():
    """The fallback claim: a protocol-v2 client that never offers
    ``codecs`` runs a whole job over plain JSON lines."""
    async def scenario():
        service = SchedulerService(metric="rest", n=1, seed=5)
        server = SchedulerServer(service)
        await server.start()
        try:
            async with SchedulerClient(server.host, server.port,
                                       name="submit",
                                       codec="json") as control:
                handle = await control.submit(_job(10))
            reader, writer = await asyncio.open_connection(
                server.host, server.port)

            async def call(payload):
                writer.write(protocol.encode_line(payload))
                await writer.drain()
                return protocol.decode_line(await reader.readline())

            welcome = await call({"type": protocol.HELLO,
                                  "worker": "legacy", "site": 0,
                                  "protocol": 2})
            assert welcome["type"] == protocol.WELCOME
            assert welcome["protocol"] == 2
            assert "codec" not in welcome  # nothing was offered
            done = 0
            while True:
                reply = await call({"type": protocol.REQUEST_TASK,
                                    "job_id": handle.job_id})
                if reply["type"] == protocol.NO_TASK:
                    assert reply["reason"] == protocol.REASON_JOB_DONE
                    break
                assert reply["type"] == protocol.TASK
                ack = await call({"type": protocol.TASK_DONE,
                                  "task_id": reply["task_id"],
                                  "lease_id": reply["lease_id"]})
                assert ack["type"] == protocol.ACK and ack["accepted"]
                done += 1
            writer.close()
            await writer.wait_closed()
            assert done == 10
        finally:
            await server.stop()

    run(scenario())


def test_pipelining_across_negotiation_is_refused():
    """A client must await the HELLO reply before sending more: bytes
    pipelined past a codec switch are ambiguous, so the server refuses
    the connection rather than guess."""
    async def scenario():
        service = SchedulerService()
        server = SchedulerServer(service)
        await server.start()
        try:
            reader, writer = await asyncio.open_connection(
                server.host, server.port)
            hello = protocol.encode_line({
                "type": protocol.HELLO, "worker": "eager", "site": 0,
                "protocol": protocol.PROTOCOL_VERSION,
                "codecs": [protocol.CODEC_BINARY]})
            eager = protocol.encode_line({
                "type": protocol.REQUEST_TASK})
            writer.write(hello + eager)
            await writer.drain()
            replies = []
            while True:
                line = await reader.readline()
                if not line:
                    break
                replies.append(protocol.decode_line(line))
            writer.close()
            await writer.wait_closed()
            assert replies[0]["type"] == protocol.WELCOME
            assert replies[-1]["type"] == protocol.ERROR
            assert "pipelined" in replies[-1]["error"]
        finally:
            await server.stop()

    run(scenario())
