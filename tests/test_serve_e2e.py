"""End-to-end: live server + worker fleet over localhost TCP.

The deterministic smoke tests of PR 1 (start the daemon, run a small
fixed-seed Coadd-style job through real socket workers, assert
exactly-once completion and a clean drain) plus the protocol-v2
fault-tolerance proofs: version negotiation, lease expiry for a worker
that goes silent mid-task, rejection of a zombie's late completion,
and multi-job tenancy.  Every asyncio entry point is wrapped in a hard
timeout so a deadlock can never hang CI.
"""

import asyncio

import pytest

from repro.exp import ExperimentConfig
from repro.exp.runner import build_job
from repro.serve import messages, protocol
from repro.serve.client import SchedulerClient, WorkerClient
from repro.serve.loadgen import run_load, serve_and_load
from repro.serve.server import SchedulerServer
from repro.serve.service import SchedulerService

#: Hard wall-clock cap per test; localhost runs finish in well under 5 s.
TIMEOUT = 60


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=TIMEOUT))


def coadd_job(num_tasks=60, seed=0):
    return build_job(ExperimentConfig(num_tasks=num_tasks,
                                      capacity_files=500, seed=seed))


async def raw_connection(server):
    """A raw v2 connection for crafting protocol-level scenarios."""
    return await asyncio.open_connection(
        server.host, server.port,
        limit=protocol.MAX_MESSAGE_BYTES + 1024)


async def raw_call(reader, writer, message):
    writer.write(message.encode())
    await writer.drain()
    return messages.decode_server(await reader.readline())


def test_four_workers_complete_a_coadd_job_and_drain():
    job = coadd_job(60)
    report = run(serve_and_load(job, workers=4, sites=4,
                                metric="combined", n=2, seed=42,
                                capacity_files=300))
    stats = report["stats"]
    # Exactly-once completion, across the fleet and on the server.
    assert report["tasks_submitted"] == len(job)
    assert report["tasks_done"] == len(job)
    assert stats["completions"] == len(job)
    assert stats["duplicate_completions"] == 0
    assert stats["stale_completions"] == 0
    assert stats["queue_depth"] == 0
    assert stats["outstanding"] == 0
    # Lease bookkeeping: one grant per assignment, none left behind.
    assert stats["leases"]["granted"] == len(job)
    assert stats["leases"]["active"] == 0
    assert stats["leases"]["expiries"] == 0
    # Tenancy: one job, completed.
    assert report["job_status"]["done"]
    assert stats["jobs_completed"] == 1
    # Observability surfaced something sane.
    assert stats["assignments"] == len(job)
    assert stats["decision_latency"]["count"] == len(job)
    assert stats["decision_latency"]["p99_us"] > 0
    assert set(stats["sites"]) == {"0", "1", "2", "3"}
    # serve_and_load only returns after serve_until_drained finished,
    # so reaching this point *is* the clean-drain assertion; the
    # workers' stop reasons double-check why they exited.
    assert {worker["stop_reason"] for worker in report["workers"]} \
        == {protocol.REASON_JOB_DONE}


def test_e2e_is_deterministic_for_single_worker():
    """One worker, n=1: the assignment order is a pure function of the
    seed, so two runs complete identical task counts with identical
    file-fetch totals."""
    reports = [
        run(serve_and_load(coadd_job(30, seed=7), workers=1, sites=1,
                           metric="rest", n=1, seed=7,
                           capacity_files=300))
        for _ in range(2)
    ]
    assert reports[0]["tasks_done"] == 30
    assert reports[0]["files_fetched"] == reports[1]["files_fetched"]
    assert (reports[0]["stats"]["sites"]
            == reports[1]["stats"]["sites"])


def test_malformed_messages_get_error_replies():
    async def scenario():
        service = SchedulerService()
        server = SchedulerServer(service)
        await server.start()
        try:
            reader, writer = await raw_connection(server)
            # REQUEST_TASK before HELLO is a semantic error: the
            # stream is still parseable, so the connection survives.
            reply = await raw_call(reader, writer,
                                   messages.RequestTask())
            assert isinstance(reply, messages.Error)
            # Bad JSON is a framing error: final ERROR, then close
            # (v3 semantics — the codec cannot trust the stream).
            writer.write(b"nonsense\n")
            await writer.drain()
            reply = messages.decode_server(await reader.readline())
            assert isinstance(reply, messages.Error)
            assert await reader.readline() == b""
            writer.close()
            await writer.wait_closed()
            # An unknown message type also closes: the codec cannot
            # lift the payload into a typed message.
            reader, writer = await raw_connection(server)
            writer.write(protocol.encode_line({"type": "FROBNICATE"}))
            await writer.drain()
            reply = messages.decode_server(await reader.readline())
            assert isinstance(reply, messages.Error)
            assert await reader.readline() == b""
            writer.close()
            await writer.wait_closed()
        finally:
            await server.stop()

    run(scenario())


def test_v1_hello_is_refused_cleanly():
    """Version negotiation: a v1 client (no ``protocol`` field) gets a
    clean ERROR naming the supported version, then a clean close —
    not a crash, not a hang."""
    async def scenario():
        service = SchedulerService()
        server = SchedulerServer(service)
        await server.start()
        try:
            reader, writer = await raw_connection(server)
            writer.write(protocol.encode_line(
                {"type": protocol.HELLO, "worker": "old", "site": 0}))
            await writer.drain()
            reply = messages.decode_server(await reader.readline())
            assert isinstance(reply, messages.Error)
            assert "protocol version 1" in reply.error
            assert protocol.SUPPORTED_PROTOCOLS_TEXT in reply.error
            # The server closes its side after the refusal.
            assert await reader.readline() == b""
            writer.close()
            await writer.wait_closed()
        finally:
            await server.stop()
        # The refused connection left no state behind.
        assert service.stats_snapshot()["assignments"] == 0

    run(scenario())


def test_run_load_against_external_server_and_drain():
    """run_load drives an already-running server and DRAIN stops it."""
    async def scenario():
        service = SchedulerService(metric="rest", n=1, seed=3)
        server = SchedulerServer(service)
        await server.start()
        serve_task = asyncio.ensure_future(server.serve_until_drained())
        report = await run_load(server.host, server.port, coadd_job(20),
                                workers=2, sites=2, capacity_files=300,
                                drain=True)
        await serve_task  # returns only on a clean drain
        assert report["tasks_done"] == 20
        assert service.draining
        return report

    run(scenario())


def test_stats_and_job_status_midstream():
    async def scenario():
        service = SchedulerService()
        server = SchedulerServer(service)
        await server.start()
        try:
            async with SchedulerClient(server.host,
                                       server.port) as control:
                handle = await control.submit(coadd_job(10))
                stats = await control.stats()
                assert stats["tasks_submitted"] == 10
                assert stats["queue_depth"] == 10
                assert stats["assignments"] == 0
                assert stats["jobs_active"] == 1
                status = await handle.status()
                assert status["tasks"] == 10
                assert status["pending"] == 10
                assert not status["done"]
        finally:
            await server.stop()

    run(scenario())


def test_dead_worker_lease_expires_task_requeues_zombie_rejected():
    """The ISSUE's fault-tolerance proof: a worker that goes silent
    holding a lease loses it within ~2 heartbeat intervals, its task
    is reassigned and completed elsewhere, and the zombie's late
    TASK_DONE is rejected without corrupting the counters."""
    lease_ttl = 0.3
    num_tasks = 6

    async def scenario():
        service = SchedulerService(metric="rest", n=1, seed=0,
                                   lease_ttl=lease_ttl)
        server = SchedulerServer(service, sweep_interval=0.02)
        await server.start()
        try:
            async with SchedulerClient(server.host,
                                       server.port) as control:
                handle = await control.submit(
                    [{"files": [fid], "flops": 0.0}
                     for fid in range(num_tasks)])

                # The doomed worker grabs one task... then goes silent
                # (no heartbeat, no completion) — a kill -9 whose TCP
                # teardown the server never saw.
                reader, writer = await raw_connection(server)
                welcome = await raw_call(
                    reader, writer,
                    messages.Hello(worker="zombie", site=0,
                                   protocol=protocol.PROTOCOL_VERSION))
                assert isinstance(welcome, messages.Welcome)
                assert welcome.lease_ttl == pytest.approx(lease_ttl)
                grabbed = await raw_call(reader, writer,
                                         messages.RequestTask(
                                             job_id=handle.job_id))
                assert isinstance(grabbed, messages.TaskAssign)

                # A healthy worker on another site finishes the job:
                # it drains the other five tasks, parks while the
                # zombie's lease is live, and picks up the requeued
                # task once the sweeper expires it.
                healthy = WorkerClient(server.host, server.port,
                                       worker="healthy", site=1,
                                       job_id=handle.job_id)
                summary = await healthy.run()
                assert summary["tasks_done"] == num_tasks
                assert summary["stop_reason"] \
                    == protocol.REASON_JOB_DONE

                status = await handle.wait_done()
                assert status["completed"] == num_tasks

                # The zombie wakes up and reports its long-lost task.
                late = await raw_call(
                    reader, writer,
                    messages.TaskDone(task_id=grabbed.task_id,
                                      lease_id=grabbed.lease_id))
                assert isinstance(late, messages.Ack)
                assert not late.accepted
                assert late.reason == "already-complete"
                writer.close()
                await writer.wait_closed()

                stats = await control.stats()
                # Zero lost, zero double-counted.
                assert stats["completions"] == num_tasks
                assert stats["duplicate_completions"] == 1
                assert stats["leases"]["expiries"] == 1
                assert stats["requeues"] == 1
                assert stats["leases"]["active"] == 0
                await control.drain()
        finally:
            await server.stop()

    run(scenario())


def test_reassignment_happens_within_two_heartbeat_intervals():
    """Timing half of the acceptance criterion: from the moment the
    lease *can* expire, the requeue lands within two heartbeat
    intervals (heartbeat interval = ttl/3, sweeper period well under
    it)."""
    lease_ttl = 0.3

    async def scenario():
        service = SchedulerService(metric="rest", n=1, seed=0,
                                   lease_ttl=lease_ttl)
        server = SchedulerServer(service, sweep_interval=0.02)
        await server.start()
        try:
            async with SchedulerClient(server.host,
                                       server.port) as control:
                handle = await control.submit([{"files": [1]}])
                reader, writer = await raw_connection(server)
                await raw_call(reader, writer,
                               messages.Hello(
                                   worker="doomed", site=0,
                                   protocol=protocol.PROTOCOL_VERSION))
                grabbed = await raw_call(reader, writer,
                                         messages.RequestTask())
                assert isinstance(grabbed, messages.TaskAssign)
                loop = asyncio.get_running_loop()
                granted_at = loop.time()

                # Park a healthy pull; it resolves when the sweeper
                # requeues the zombie's task.
                healthy = SchedulerClient(server.host, server.port,
                                          name="healthy", site=1)
                async with healthy:
                    reply = await asyncio.wait_for(
                        healthy.call(messages.RequestTask(
                            job_id=handle.job_id)),
                        timeout=TIMEOUT)
                    reassigned_at = loop.time()
                    assert isinstance(reply, messages.TaskAssign)
                    assert reply.task_id == grabbed.task_id
                    assert reply.lease_id != grabbed.lease_id
                    waited_past_ttl = (reassigned_at - granted_at
                                       - lease_ttl)
                    two_heartbeats = 2 * (lease_ttl / 3.0)
                    assert waited_past_ttl < two_heartbeats
                    done = await healthy.call(messages.TaskDone(
                        task_id=reply.task_id,
                        lease_id=reply.lease_id))
                    assert done.accepted
                writer.close()
                await writer.wait_closed()
                await control.drain()
        finally:
            await server.stop()

    run(scenario())


def test_heartbeats_keep_a_slow_worker_alive():
    """A worker slower than the lease TTL survives via renewal: its
    simulated compute outlasts the TTL, but heartbeats at the
    advertised cadence keep the lease fresh and the completion is
    accepted — no spurious requeue, no stale rejection."""
    lease_ttl = 0.3

    async def scenario():
        service = SchedulerService(metric="rest", n=1, seed=0,
                                   lease_ttl=lease_ttl)
        server = SchedulerServer(service, sweep_interval=0.02)
        await server.start()
        try:
            async with SchedulerClient(server.host,
                                       server.port) as control:
                await control.submit([{"files": [1], "flops": 1.0}])
                # flops=1.0 at 1.25 flops/s -> 0.8 s of "compute",
                # well past the 0.3 s TTL.
                worker = WorkerClient(server.host, server.port,
                                      worker="slow", site=0,
                                      flops_per_sec=1.25)
                summary = await worker.run()
                assert summary["tasks_done"] == 1
                assert summary["rejected_completions"] == 0
                assert summary["heartbeats_sent"] >= 2
                stats = await control.stats()
                assert stats["completions"] == 1
                assert stats["leases"]["expiries"] == 0
                assert stats["leases"]["renewals"] >= 2
                await control.drain()
        finally:
            await server.stop()

    run(scenario())


def test_two_tenants_share_one_server():
    """Multi-job tenancy over real sockets: two jobs, two scoped
    fleets; each fleet stops on *its* job's completion and the
    per-job counters never mix."""
    async def scenario():
        service = SchedulerService(metric="rest", n=1, seed=0)
        server = SchedulerServer(service)
        await server.start()
        try:
            async with SchedulerClient(server.host, server.port,
                                       name="tenant-a") as tenant_a, \
                    SchedulerClient(server.host, server.port,
                                    name="tenant-b") as tenant_b:
                job_a = await tenant_a.submit(
                    [{"files": [fid]} for fid in range(8)])
                job_b = await tenant_b.submit(
                    [{"files": [100 + fid]} for fid in range(5)])
                assert job_a.job_id != job_b.job_id

                fleet = [WorkerClient(server.host, server.port,
                                      worker=f"a{i}", site=i % 2,
                                      job_id=job_a.job_id)
                         for i in range(2)]
                fleet += [WorkerClient(server.host, server.port,
                                       worker=f"b{i}", site=i % 2,
                                       job_id=job_b.job_id)
                          for i in range(2)]
                summaries = await asyncio.gather(
                    *(worker.run() for worker in fleet))

                status_a = await job_a.wait_done()
                status_b = await job_b.wait_done()
                assert status_a["tasks"] == 8
                assert status_b["tasks"] == 5
                done_a = sum(s["tasks_done"] for s in summaries
                             if s["job_id"] == job_a.job_id)
                done_b = sum(s["tasks_done"] for s in summaries
                             if s["job_id"] == job_b.job_id)
                assert done_a == 8 and done_b == 5
                assert {s["stop_reason"] for s in summaries} \
                    == {protocol.REASON_JOB_DONE}
                stats = await tenant_a.stats()
                assert stats["completions"] == 13
                assert stats["jobs_completed"] == 2
                await tenant_a.drain()
        finally:
            await server.stop()

    run(scenario())
