"""End-to-end: live server + worker fleet over localhost TCP.

The deterministic smoke test of the ISSUE: start the daemon, run a
small fixed-seed Coadd-style job through real socket workers, and
assert every task completes exactly once and the server drains
cleanly.  Every asyncio entry point is wrapped in a hard timeout so a
deadlock can never hang CI.
"""

import asyncio

import pytest

from repro.exp import ExperimentConfig
from repro.exp.runner import build_job
from repro.serve import protocol
from repro.serve.loadgen import ControlClient, run_load, serve_and_load
from repro.serve.server import SchedulerServer
from repro.serve.service import SchedulerService

#: Hard wall-clock cap per test; localhost runs finish in well under 5 s.
TIMEOUT = 60


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=TIMEOUT))


def coadd_job(num_tasks=60, seed=0):
    return build_job(ExperimentConfig(num_tasks=num_tasks,
                                      capacity_files=500, seed=seed))


def test_four_workers_complete_a_coadd_job_and_drain():
    job = coadd_job(60)
    report = run(serve_and_load(job, workers=4, sites=4,
                                metric="combined", n=2, seed=42,
                                capacity_files=300))
    stats = report["stats"]
    # Exactly-once completion, across the fleet and on the server.
    assert report["tasks_submitted"] == len(job)
    assert report["tasks_done"] == len(job)
    assert stats["completions"] == len(job)
    assert stats["duplicate_completions"] == 0
    assert stats["queue_depth"] == 0
    assert stats["outstanding"] == 0
    # Observability surfaced something sane.
    assert stats["assignments"] == len(job)
    assert stats["decision_latency"]["count"] == len(job)
    assert stats["decision_latency"]["p99_us"] > 0
    assert set(stats["sites"]) == {"0", "1", "2", "3"}
    # serve_and_load only returns after serve_until_drained finished,
    # so reaching this point *is* the clean-drain assertion; the
    # workers' stop reasons double-check why they exited.
    assert {worker["stop_reason"] for worker in report["workers"]} \
        == {"job complete"}


def test_e2e_is_deterministic_for_single_worker():
    """One worker, n=1: the assignment order is a pure function of the
    seed, so two runs complete identical task counts with identical
    file-fetch totals."""
    reports = [
        run(serve_and_load(coadd_job(30, seed=7), workers=1, sites=1,
                           metric="rest", n=1, seed=7,
                           capacity_files=300))
        for _ in range(2)
    ]
    assert reports[0]["tasks_done"] == 30
    assert reports[0]["files_fetched"] == reports[1]["files_fetched"]
    assert (reports[0]["stats"]["sites"]
            == reports[1]["stats"]["sites"])


def test_malformed_messages_get_error_replies():
    async def scenario():
        service = SchedulerService()
        server = SchedulerServer(service)
        await server.start()
        try:
            reader, writer = await asyncio.open_connection(
                server.host, server.port)
            # Bad JSON is rejected but the connection stays usable.
            writer.write(b"nonsense\n")
            await writer.drain()
            reply = protocol.decode(await reader.readline())
            assert reply["type"] == protocol.ERROR
            # REQUEST_TASK before HELLO is a protocol error.
            writer.write(protocol.encode({"type": protocol.REQUEST_TASK}))
            await writer.drain()
            reply = protocol.decode(await reader.readline())
            assert reply["type"] == protocol.ERROR
            # Unknown type likewise.
            writer.write(protocol.encode({"type": "FROBNICATE"}))
            await writer.drain()
            reply = protocol.decode(await reader.readline())
            assert reply["type"] == protocol.ERROR
            writer.close()
            await writer.wait_closed()
        finally:
            await server.stop()

    run(scenario())


def test_run_load_against_external_server_and_drain():
    """run_load drives an already-running server and DRAIN stops it."""
    async def scenario():
        service = SchedulerService(metric="rest", n=1, seed=3)
        server = SchedulerServer(service)
        await server.start()
        serve_task = asyncio.ensure_future(server.serve_until_drained())
        report = await run_load(server.host, server.port, coadd_job(20),
                                workers=2, sites=2, capacity_files=300,
                                drain=True)
        await serve_task  # returns only on a clean drain
        assert report["tasks_done"] == 20
        assert service.draining
        return report

    run(scenario())


def test_stats_request_midstream():
    async def scenario():
        service = SchedulerService()
        server = SchedulerServer(service)
        await server.start()
        try:
            async with ControlClient(server.host, server.port) as control:
                await control.submit_job(coadd_job(10))
                stats = await control.stats()
                assert stats["tasks_submitted"] == 10
                assert stats["queue_depth"] == 10
                assert stats["assignments"] == 0
        finally:
            await server.stop()

    run(scenario())
