"""Hostile-workload server features: admission control, weighted-fair
tenancy, straggler tail replication — plus the scenario harness that
drives them end to end."""

import asyncio
import json

import pytest

from repro.scenario import (Scenario, TenantSpec, WorkerGroup,
                            get_scenario, run_scenario, validate_summary)
from repro.scenario.catalog import SCENARIOS
from repro.scenario.summary import percentile
from repro.serve.service import AdmissionRejected, SchedulerService


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_service(**kwargs):
    kwargs.setdefault("clock", FakeClock())
    return SchedulerService(**kwargs)


def submit(service, n_tasks, weight=None, first_file=0):
    return service.submit_job(
        [{"files": [first_file + i], "flops": 0.0}
         for i in range(n_tasks)], weight=weight)


def pull(service, worker="w0", site=0, job_id=None):
    box = []
    service.request_task(worker, site, box.append, job_id=job_id)
    return box[0] if box else "parked"


def finish(service, assignment, worker="w0"):
    return service.task_done(worker, assignment.task.task_id,
                             assignment.lease_id)


# -- admission control --------------------------------------------------------

def test_admission_rejects_over_watermark_then_accepts_after_drain():
    service = make_service(admission_watermark=2,
                           admission_retry_after=0.5)
    submit(service, 2)
    with pytest.raises(AdmissionRejected) as info:
        submit(service, 1, first_file=100)
    assert info.value.retry_after == 0.5
    assert service.stats.admission_rejections == 1
    # Draining one task below the watermark lets the retry through.
    finish(service, pull(service))
    accepted = submit(service, 1, first_file=100)
    assert len(accepted["task_ids"]) == 1


def test_admission_rejection_allocates_no_task_ids():
    service = make_service(admission_watermark=1)
    first = submit(service, 1)
    with pytest.raises(AdmissionRejected):
        submit(service, 1, first_file=10)
    finish(service, pull(service))
    second = submit(service, 1, first_file=10)
    # Ids stay contiguous: the rejected batch consumed nothing.
    assert second["task_ids"][0] == first["task_ids"][0] + 1


def test_admission_watermark_validation():
    with pytest.raises(ValueError):
        make_service(admission_watermark=0)
    with pytest.raises(ValueError):
        make_service(admission_watermark=5, admission_retry_after=-1.0)


# -- weighted-fair tenancy ----------------------------------------------------

def test_weighted_fair_pick_order_is_three_to_one():
    service = make_service()
    gold = submit(service, 12, weight=3.0)["job_id"]
    bronze = submit(service, 12, weight=1.0, first_file=100)["job_id"]
    owners = [pull(service, worker=f"w{i}", site=0).job_id
              for i in range(8)]
    assert owners.count(gold) == 6
    assert owners.count(bronze) == 2


def test_weightless_job_rides_along_at_weight_one():
    service = make_service()
    legacy = submit(service, 12)["job_id"]          # no weight at all
    heavy = submit(service, 12, weight=3.0,
                   first_file=100)["job_id"]
    owners = [pull(service, worker=f"w{i}", site=0).job_id
              for i in range(8)]
    assert owners.count(heavy) == 6
    assert owners.count(legacy) == 2


def test_scoped_pulls_ignore_weights():
    service = make_service()
    submit(service, 4, weight=5.0)
    other = submit(service, 4, weight=1.0, first_file=100)["job_id"]
    got = pull(service, job_id=other)
    assert got.job_id == other


def test_weight_must_be_positive():
    service = make_service()
    with pytest.raises(Exception):
        submit(service, 1, weight=0.0)
    with pytest.raises(Exception):
        submit(service, 1, weight=-2)


# -- straggler tail replication ----------------------------------------------

def test_replica_first_completion_wins_without_double_count():
    service = make_service(replicate_tail=True)
    job_id = submit(service, 1)["job_id"]
    primary = pull(service, worker="w0")
    replica = pull(service, worker="w1")
    assert replica.task.task_id == primary.task.task_id
    assert replica.lease_id != primary.lease_id
    assert service.stats.task_replications == 1
    # The replica finishes first and wins the race...
    assert finish(service, replica, worker="w1").accepted
    assert service.stats.replica_wins == 1
    # ...so the primary's late report must not double-count.
    late = finish(service, primary, worker="w0")
    assert not late.accepted and late.reason == "already-complete"
    status = service.job_status(job_id)
    assert status["completed"] == 1 and status["done"]
    assert service.stats.completions == 1


def test_replica_grant_skips_own_worker_and_caps_copies():
    service = make_service(replicate_tail=True, max_replicas=1)
    submit(service, 1)
    assert pull(service, worker="w0") != "parked"
    # The primary holder never replicates its own task.
    assert pull(service, worker="w0") == "parked"
    assert pull(service, worker="w1") != "parked"
    # max_replicas=1: a third worker parks instead of a second copy.
    assert pull(service, worker="w2") == "parked"


def test_primary_expiry_promotes_replica_instead_of_requeueing():
    clock = FakeClock()
    service = make_service(clock=clock, lease_ttl=2.0,
                           replicate_tail=True)
    submit(service, 1)
    pull(service, worker="w0")
    replica = pull(service, worker="w1")
    clock.advance(1.0)
    service.heartbeat("w1")            # only the replica stays fresh
    clock.advance(1.5)                 # primary lapses at t=2.0
    assert service.expire_leases() == 1
    # The replica was promoted: nothing went back on the queue.
    assert service.queue_depth == 0
    assert service.stats.requeues == 0
    assert finish(service, replica, worker="w1").accepted


def test_replica_expiry_is_quiet():
    clock = FakeClock()
    service = make_service(clock=clock, lease_ttl=2.0,
                           replicate_tail=True)
    submit(service, 1)
    primary = pull(service, worker="w0")
    pull(service, worker="w1")
    clock.advance(1.0)
    service.heartbeat("w0")            # only the primary stays fresh
    clock.advance(1.5)
    assert service.expire_leases() == 1
    # The lapsed replica dropped silently; the primary still owns it.
    assert service.queue_depth == 0
    assert finish(service, primary, worker="w0").accepted


def test_disconnecting_primary_promotes_replica():
    service = make_service(replicate_tail=True)
    submit(service, 1)
    pull(service, worker="w0")
    replica = pull(service, worker="w1")
    assert service.disconnect("w0") == 0   # promoted, not requeued
    assert service.queue_depth == 0
    assert finish(service, replica, worker="w1").accepted
    assert service.stats.completions == 1


def test_replication_params_validated():
    with pytest.raises(ValueError):
        make_service(replicate_tail=True, max_replicas=0)


# -- scenario harness ---------------------------------------------------------

def test_catalog_scenarios_resolve_and_scale():
    assert set(SCENARIOS) >= {"flash-crowd", "diurnal", "churn",
                              "stragglers", "slow-reader",
                              "multi-tenant"}
    with pytest.raises(KeyError):
        get_scenario("nope")
    crowd = get_scenario("flash-crowd")
    quick = crowd.scaled(0.15)
    assert all(t.tasks >= 8 for t in quick.tenants)
    # The shrunk watermark must stay binding (below the total burst).
    assert quick.admission_watermark < sum(t.tasks
                                           for t in quick.tenants)
    assert crowd.scaled(1.0) is crowd


def test_percentile_linear_interpolation():
    sample = [0.0, 1.0, 2.0, 3.0]
    assert percentile(sample, 50) == 1.5
    assert percentile(sample, 100) == 3.0
    assert percentile([7.0], 99) == 7.0
    with pytest.raises(ValueError):
        percentile([], 50)


def test_validate_summary_flags_violations():
    assert validate_summary({"scenario": 3}) != []
    problems = validate_summary({
        "scenario": "x", "quick": False, "duration": 1.0,
        "tenants": {"t": {"submitted": 1, "completed": 1, "lost": 0,
                          "queue_wait": {"samples": 1, "p50": 0.0,
                                         "p99": 0.0, "max": 0.0},
                          "turnaround": {"samples": 1, "p50": 0.0,
                                         "p99": 0.0, "max": 0.0}}},
        "audit": {"tasks_submitted": 1, "completed": 1, "lost": 0,
                  "double_counted": 0, "clean": True},
        "checks": [{"name": "audit-clean", "passed": True,
                    "detail": "ok"}],
        "passed": True,
    })
    assert problems == []


def test_run_scenario_end_to_end(tmp_path):
    tiny = Scenario(
        name="tiny",
        description="smoke: two tenants, weighted, live daemon",
        tenants=(TenantSpec("gold", tasks=6, weight=3.0),
                 TenantSpec("bronze", tasks=6, weight=1.0)),
        workers=(WorkerGroup("fleet", count=2, sites=2,
                             flops_per_sec=1e9),),
        checks=("audit-clean", "all-jobs-complete"),
        timeout=30.0,
    )
    summary = asyncio.run(run_scenario(tiny, str(tmp_path)))
    assert summary["passed"], summary["checks"]
    assert validate_summary(summary) == []
    on_disk = json.loads(
        (tmp_path / "tiny" / "summary.json").read_text())
    assert on_disk["scenario"] == "tiny"
    assert on_disk["audit"]["clean"]
    assert set(on_disk["tenants"]) == {"gold", "bronze"}
