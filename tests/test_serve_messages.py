"""Typed message layer: round-trip, tolerance, validation, direction."""

import dataclasses

import pytest

from repro.serve import messages, protocol
from repro.serve.protocol import ProtocolError


CLIENT_SAMPLES = [
    messages.Hello(worker="w0", site=3,
                   protocol=protocol.PROTOCOL_VERSION),
    messages.RequestTask(),
    messages.RequestTask(job_id=4),
    messages.RequestTask(max_tasks=8),
    messages.RequestTask(job_id=4, max_tasks=2),
    messages.TaskDone(task_id=7, lease_id=12),
    messages.Heartbeat(),
    messages.Heartbeat(lease_ids=[1, 2, 3]),
    messages.FileDelta(added=[1, 2], removed=[3], referenced=[1],
                       site=0),
    messages.JobSubmit(tasks=[{"files": [1], "flops": 0.0}]),
    messages.JobSubmit(tasks=[{"files": [2]}], job_id=9),
    messages.JobStatusRequest(job_id=0),
    messages.StatsRequest(),
    messages.Drain(),
    messages.StealRequest(max_tasks=4, site_refsums=[
        {"site": 0, "files": [1, 2], "refs": [3, 1]}]),
    messages.StealAck(export_id=2),
    messages.StealDone(task_ids=[0, 2]),
]

SERVER_SAMPLES = [
    messages.Welcome(server="s", metric="rest", n=2, protocol=2,
                     lease_ttl=30.0, heartbeat_interval=10.0),
    messages.TaskAssign(task_id=5, files=[1, 9], flops=2.5,
                        lease_id=77, lease_ttl=30.0, job_id=1),
    messages.TaskBatch(tasks=[
        {"task_id": 5, "files": [1, 9], "flops": 2.5,
         "lease_id": 77, "job_id": 1},
        {"task_id": 6, "files": [2], "flops": 0.0,
         "lease_id": 78, "job_id": 1},
    ], lease_ttl=30.0),
    messages.NoTask(reason=protocol.REASON_JOB_DONE),
    messages.Ack(),
    messages.Ack(accepted=False, reason="stale-lease"),
    messages.HeartbeatAck(renewed=[77], expired=[3]),
    messages.JobAccepted(job_id=0, task_ids=[0, 1, 2]),
    messages.JobStatusReply(job_id=0, tasks=3, completed=1, pending=1,
                            outstanding=1, done=False),
    messages.StatsReply(stats={"completions": 4}),
    messages.Redirect(shards=[{"shard": 0, "host": "127.0.0.1",
                               "port": 7178}], shard_count=1),
    messages.Error(error="nope"),
    messages.StealGrant(),
    messages.StealGrant(tasks=[{"task_id": 0, "job_id": 0,
                                "files": [1], "flops": 1.0}],
                        export_id=1),
]


@pytest.mark.parametrize("message", CLIENT_SAMPLES,
                         ids=lambda m: type(m).__name__)
def test_client_messages_roundtrip(message):
    assert messages.decode_client(message.encode()) == message


@pytest.mark.parametrize("message", SERVER_SAMPLES,
                         ids=lambda m: type(m).__name__)
def test_server_messages_roundtrip(message):
    assert messages.decode_server(message.encode()) == message


def test_every_wire_type_is_covered():
    """The typed registries span the full protocol constant set."""
    assert set(messages.ClientMessage.REGISTRY) == protocol.CLIENT_TYPES
    assert set(messages.ServerMessage.REGISTRY) == {
        protocol.WELCOME, protocol.TASK, protocol.TASK_BATCH,
        protocol.NO_TASK,
        protocol.ACK, protocol.HEARTBEAT_ACK, protocol.JOB_ACCEPTED,
        protocol.JOB_STATUS, protocol.STATS, protocol.REDIRECT,
        protocol.ERROR, protocol.STEAL_GRANT}


def test_unknown_fields_are_tolerated():
    """Forward compat: fields a newer peer added are ignored."""
    line = protocol.encode_line({"type": protocol.TASK_DONE, "task_id": 1,
                            "lease_id": 2, "shiny_new_field": "yes"})
    message = messages.decode_client(line)
    assert message == messages.TaskDone(task_id=1, lease_id=2)


def test_missing_required_field_raises():
    line = protocol.encode_line({"type": protocol.TASK_DONE, "task_id": 1})
    with pytest.raises(ProtocolError, match="lease_id"):
        messages.decode_client(line)


def test_unknown_type_raises_per_direction():
    with pytest.raises(ProtocolError):
        messages.decode_client(protocol.encode_line({"type": "FROBNICATE"}))
    # A server-only type is unknown on the server's receiving side.
    with pytest.raises(ProtocolError):
        messages.decode_client(protocol.encode_line(
            {"type": protocol.WELCOME, "server": "s", "metric": "rest",
             "n": 1}))


def test_stats_type_decodes_by_direction():
    """STATS is request and reply; direction picks the class."""
    line = protocol.encode_line({"type": protocol.STATS})
    assert isinstance(messages.decode_client(line),
                      messages.StatsRequest)
    line = protocol.encode_line({"type": protocol.STATS, "stats": {}})
    assert isinstance(messages.decode_server(line),
                      messages.StatsReply)


def test_no_task_reason_is_a_closed_enum():
    for reason in protocol.NO_TASK_REASONS:
        messages.NoTask(reason=reason).validate()
    with pytest.raises(ProtocolError):
        messages.decode_server(protocol.encode_line(
            {"type": protocol.NO_TASK, "reason": "because"}))


@pytest.mark.parametrize("payload", [
    {"type": protocol.HELLO, "worker": 7, "site": 0},
    {"type": protocol.HELLO, "worker": "w", "site": "x"},
    {"type": protocol.HELLO, "worker": "w", "site": True},
    {"type": protocol.TASK_DONE, "task_id": -1, "lease_id": 0},
    {"type": protocol.TASK_DONE, "task_id": True, "lease_id": 0},
    {"type": protocol.HEARTBEAT, "lease_ids": [1, True]},
    {"type": protocol.FILE_DELTA, "added": [1, "x"]},
    {"type": protocol.FILE_DELTA, "added": [True]},
    {"type": protocol.REQUEST_TASK, "job_id": "0"},
    {"type": protocol.JOB_SUBMIT, "tasks": "not-a-list"},
])
def test_client_field_validation(payload):
    with pytest.raises(ProtocolError):
        messages.decode_client(protocol.encode_line(payload))


def test_all_message_dataclasses_are_frozen():
    for cls in list(messages.ClientMessage.REGISTRY.values()) \
            + list(messages.ServerMessage.REGISTRY.values()):
        assert dataclasses.is_dataclass(cls)
        params = getattr(cls, "__dataclass_params__")
        assert params.frozen, f"{cls.__name__} must be frozen"


def test_none_valued_optionals_stay_off_the_wire():
    """v1-shaped compactness: absent is the encoding of None."""
    payload = messages.RequestTask().to_dict()
    assert payload == {"type": protocol.REQUEST_TASK}
    payload = messages.Ack().to_dict()
    assert "reason" not in payload and "draining" not in payload
