"""Wire format and observability primitives of the live service."""

import json

import pytest

from repro.serve import protocol
from repro.serve.stats import LatencyHistogram, ServeStats, format_stats


# -- framing -----------------------------------------------------------------

def test_encode_decode_roundtrip():
    message = {"type": protocol.TASK, "task_id": 3,
               "files": [1, 2, 9], "flops": 1.5e9}
    line = protocol.encode_line(message)
    assert line.endswith(b"\n")
    assert protocol.decode_line(line) == message


def test_encode_requires_type():
    with pytest.raises(protocol.ProtocolError):
        protocol.encode_line({"task_id": 1})


def test_encode_rejects_oversized_message():
    huge = {"type": protocol.JOB_SUBMIT,
            "tasks": list(range(protocol.MAX_MESSAGE_BYTES))}
    with pytest.raises(protocol.ProtocolError):
        protocol.encode_line(huge)


@pytest.mark.parametrize("line", [
    b"not json\n",
    b"[1, 2, 3]\n",            # not an object
    b'{"task_id": 5}\n',       # no type
    b'{"type": 7}\n',          # non-string type
])
def test_decode_rejects_malformed(line):
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_line(line)


def test_decode_rejects_oversized_line():
    line = json.dumps({"type": "X", "pad": "a" * protocol.MAX_MESSAGE_BYTES}
                      ).encode()
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_line(line)


def test_deprecated_shims_still_work_but_warn():
    """``encode``/``decode`` survive for protocol-v2 era callers; they
    delegate to the ``_line`` functions and warn once per call site."""
    message = {"type": protocol.TASK, "task_id": 3}
    with pytest.warns(DeprecationWarning, match="encode"):
        line = protocol.encode(message)
    assert line == protocol.encode_line(message)
    with pytest.warns(DeprecationWarning, match="decode"):
        assert protocol.decode(line) == message


# -- codec negotiation -------------------------------------------------------

def test_negotiate_codec_picks_first_mutual_offer():
    assert protocol.negotiate_codec(
        [protocol.CODEC_BINARY, protocol.CODEC_JSON]
    ) == protocol.CODEC_BINARY
    assert protocol.negotiate_codec(
        [protocol.CODEC_JSON, protocol.CODEC_BINARY]
    ) == protocol.CODEC_JSON
    # Unknown offers are skipped, not fatal: forward compatibility.
    assert protocol.negotiate_codec(
        ["zstd-9", protocol.CODEC_BINARY]
    ) == protocol.CODEC_BINARY


def test_negotiate_codec_falls_back_to_json():
    # No offers / nothing mutual -> the v2-compatible JSON framing.
    assert protocol.negotiate_codec([]) == protocol.CODEC_JSON
    assert protocol.negotiate_codec(["zstd-9"]) == protocol.CODEC_JSON
    assert protocol.negotiate_codec(
        [protocol.CODEC_BINARY], supported=(protocol.CODEC_JSON,)
    ) == protocol.CODEC_JSON


def test_codec_offers_maps_cli_options():
    assert protocol.codec_offers("auto") == list(protocol.DEFAULT_CODECS)
    assert protocol.codec_offers("json") == [protocol.CODEC_JSON]
    assert protocol.codec_offers("binary") == [protocol.CODEC_BINARY]
    with pytest.raises(ValueError):
        protocol.codec_offers("carrier-pigeon")


def test_int_list_validation():
    message = {"type": protocol.FILE_DELTA, "added": [1, 2], "removed": []}
    assert protocol.int_list(message, "added") == [1, 2]
    assert protocol.int_list(message, "referenced") == []
    with pytest.raises(protocol.ProtocolError):
        protocol.int_list({"added": [1, "x"]}, "added")
    with pytest.raises(protocol.ProtocolError):
        protocol.int_list({"added": 3}, "added")


def test_int_list_rejects_booleans():
    """Regression: ``isinstance(True, int)`` is true in Python, so a
    JSON ``true`` used to slip through as a file id."""
    with pytest.raises(protocol.ProtocolError):
        protocol.int_list({"added": [True]}, "added")
    with pytest.raises(protocol.ProtocolError):
        protocol.int_list({"added": [1, False, 2]}, "added")
    assert protocol.is_int(3) and not protocol.is_int(True)


# -- latency histogram -------------------------------------------------------

def test_histogram_empty():
    hist = LatencyHistogram()
    assert hist.count == 0
    assert hist.quantile(0.5) == 0.0
    assert hist.snapshot()["p99_us"] == 0.0


def test_histogram_quantiles_bounded():
    hist = LatencyHistogram()
    samples = [10e-6] * 90 + [5e-3] * 10
    for sample in samples:
        hist.record(sample)
    assert hist.count == 100
    assert hist.max == pytest.approx(5e-3)
    # p50 lands in the 10us bucket (upper edge <= 16us), p99 near max.
    assert 10e-6 <= hist.quantile(0.50) <= 16e-6
    assert 2.5e-3 <= hist.quantile(0.99) <= 5e-3
    # Quantiles never exceed the observed max.
    assert hist.quantile(1.0) <= hist.max


def test_histogram_mean_and_underflow():
    hist = LatencyHistogram()
    hist.record(0.0)        # underflow bucket
    hist.record(2e-6)
    assert hist.count == 2
    assert hist.mean == pytest.approx(1e-6)


# -- stats snapshot ----------------------------------------------------------

def test_stats_snapshot_and_rendering():
    clock_value = [0.0]
    stats = ServeStats(clock=lambda: clock_value[0])
    clock_value[0] = 2.0
    stats.jobs_submitted += 1
    stats.tasks_submitted += 10
    stats.record_queue_depth(10)
    stats.record_assignment(0, 100e-6, overlap_hit=True)
    stats.record_assignment(0, 200e-6, overlap_hit=False)
    stats.record_assignment(1, 50e-6, overlap_hit=True)
    stats.completions += 3
    stats.record_delta(added=4, removed=1, referenced=9)
    snap = stats.snapshot(queue_depth=7, outstanding=2,
                          parked_workers=1, draining=False)
    assert snap["assignments"] == 3
    assert snap["assignments_per_sec"] == pytest.approx(1.5)
    assert snap["peak_queue_depth"] == 10
    assert snap["sites"]["0"]["overlap_hit_rate"] == pytest.approx(0.5)
    assert snap["sites"]["1"]["overlap_hit_rate"] == pytest.approx(1.0)
    assert snap["file_deltas"] == {"added": 4, "removed": 1,
                                   "referenced": 9}
    assert snap["draining"] is False
    rendered = format_stats(snap)
    assert "assignments" in rendered
    assert "p99" in rendered
    assert "site   0" in rendered
    # The snapshot must be JSON-serializable (it rides the wire).
    json.dumps(snap)
