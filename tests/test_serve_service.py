"""Scheduling semantics of the transport-agnostic SchedulerService."""

import pytest

from repro.core.policy_engine import PolicyEngine, SiteFileState
from repro.grid.job import Task
from repro.serve import protocol
from repro.serve.service import (Assignment, SchedulerService,
                                 ServiceError)


class FakeClock:
    """Manually-advanced monotonic clock for lease tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_service(**kwargs):
    kwargs.setdefault("clock", FakeClock())
    return SchedulerService(**kwargs)


def submit(service, specs, job_id=None):
    return service.submit_job([{"files": files, "flops": flops}
                               for files, flops in specs],
                              job_id=job_id)


def pull(service, worker="w0", site=0, job_id=None):
    """Synchronous request_task; returns the delivered Assignment or
    NO_TASK reason immediately, or the string "parked"."""
    box = []
    service.request_task(worker, site, box.append, job_id=job_id)
    return box[0] if box else "parked"


def finish(service, assignment, worker="w0"):
    return service.task_done(worker, assignment.task.task_id,
                             assignment.lease_id)


# -- engine deltas (sim-free path) -------------------------------------------

def test_site_file_state_mirrors_storage_semantics():
    state = SiteFileState()
    seen = []
    state.on_insert(lambda fid: seen.append(("+", fid)))
    state.on_evict(lambda fid: seen.append(("-", fid)))
    state.on_touch(lambda fid: seen.append(("t", fid)))
    assert state.add(5) and not state.add(5)       # idempotent
    assert 5 in state and len(state) == 1
    assert state.reference(5) == 1
    assert state.reference(7) == 1                 # refs without residency
    assert state.remove(5) and not state.remove(5)
    assert state.reference_count(5) == 1           # refs survive removal
    assert state.overlap([5, 7]) == 0
    assert seen == [("+", 5), ("t", 5), ("t", 7), ("-", 5)]


def test_engine_deltas_steer_decisions():
    tasks = {0: Task(0, frozenset({1, 2, 3})),
             1: Task(1, frozenset({8, 9}))}
    engine = PolicyEngine(tasks, metric="rest", n=1)
    engine.attach_site(0)
    for task in tasks.values():
        engine.add_task(task)
    # Zero overlap everywhere: rest prefers the fewest-files task.
    assert engine.choose(0).task_id == 1
    # Make task 0 almost fully resident at site 0: it must win now.
    engine.file_added(0, 1)
    engine.file_added(0, 2)
    assert engine.choose(0).task_id == 0
    assert engine.overlap(0, 0) == 2
    # Removing the files flips the decision back.
    engine.file_removed(0, 1)
    engine.file_removed(0, 2)
    assert engine.choose(0).task_id == 1


def test_engine_choose_scoped_by_eligible_set():
    tasks = {0: Task(0, frozenset({1})), 1: Task(1, frozenset({2, 3}))}
    engine = PolicyEngine(tasks, metric="rest", n=1)
    engine.attach_site(0)
    for task in tasks.values():
        engine.add_task(task)
    # Unscoped, rest picks the one-file task; scoped to {1} it cannot.
    assert engine.choose(0).task_id == 0
    assert engine.choose(0, eligible={1}).task_id == 1
    # Scoping also restricts overlap candidates.
    engine.file_added(0, 1)
    assert engine.choose(0).task_id == 0
    assert engine.choose(0, eligible={1}).task_id == 1


# -- job intake --------------------------------------------------------------

def test_submit_assigns_global_ids_across_jobs():
    service = make_service()
    first = submit(service, [([1, 2], 0.0), ([3], 1.0)])
    second = submit(service, [([4], 0.0)])
    assert first == {"job_id": 0, "task_ids": [0, 1]}
    assert second == {"job_id": 1, "task_ids": [2]}
    assert service.queue_depth == 3
    assert service.job_status(0)["tasks"] == 2
    assert service.job_status(1)["tasks"] == 1


def test_submit_chunks_extend_one_job():
    service = make_service()
    first = submit(service, [([1], 0.0)])
    second = submit(service, [([2], 0.0), ([3], 0.0)],
                    job_id=first["job_id"])
    assert second["job_id"] == first["job_id"]
    assert service.job_status(first["job_id"])["tasks"] == 3
    assert service.stats.jobs_submitted == 1
    with pytest.raises(ServiceError):
        submit(service, [([9], 0.0)], job_id=42)


@pytest.mark.parametrize("payload", [
    None, [], [7], [{"files": []}], [{"files": [1, "x"]}],
    [{"files": [True]}],  # bools must not pass as file ids
    [{"files": [1], "flops": -2}],
])
def test_submit_rejects_bad_payloads(payload):
    with pytest.raises(ServiceError):
        make_service().submit_job(payload)


def test_job_status_unknown_job_rejected():
    with pytest.raises(ServiceError):
        make_service().job_status(0)


# -- pull / park / wake ------------------------------------------------------

def test_pull_assigns_lease_then_reports_done():
    service = make_service(metric="rest")
    submit(service, [([1], 0.0), ([2, 3], 0.0)])
    assignment = pull(service)
    assert isinstance(assignment, Assignment)
    assert assignment.task.task_id == 0  # rest: fewest files first
    assert assignment.job_id == 0
    assert assignment.lease_ttl == service.lease_ttl
    assert service.outstanding == 1
    assert service.active_leases == 1
    result = finish(service, assignment)
    assert result.accepted and result.reason is None
    assert service.stats.completions == 1
    assert service.active_leases == 0


def test_duplicate_completion_rejected_not_counted():
    service = make_service()
    submit(service, [([1], 0.0)])
    assignment = pull(service)
    assert finish(service, assignment).accepted
    again = finish(service, assignment)
    assert not again.accepted
    assert again.reason == "already-complete"
    assert service.stats.completions == 1
    assert service.stats.duplicate_completions == 1
    with pytest.raises(ServiceError):
        service.task_done("w0", 999, assignment.lease_id)


def test_worker_parks_before_any_job_and_wakes_on_submit():
    service = make_service()
    box = []
    service.request_task("w0", 0, box.append)
    assert box == []  # parked: no job yet
    submit(service, [([4], 0.0)])
    assert len(box) == 1 and box[0].task.task_id == 0


def test_parked_workers_wake_fifo_on_requeue():
    service = make_service()
    submit(service, [([1], 0.0)])
    assignment = pull(service, worker="lost")
    # Everything assigned: further pulls park (task may yet requeue).
    assert pull(service, worker="w1", site=0) == "parked"
    assert pull(service, worker="w2", site=0) == "parked"
    # The assignee dies; its task requeues to the first parked worker.
    assert service.disconnect("lost") == 1
    assert service.stats.requeues == 1
    assert service.outstanding == 1  # w1 holds it now
    stale = service.task_done("lost", assignment.task.task_id,
                              assignment.lease_id)
    assert not stale.accepted and stale.reason == "stale-lease"


def test_completion_releases_parked_workers_with_idle():
    service = make_service()
    submit(service, [([1], 0.0)])
    assignment = pull(service, worker="w0")
    box = []
    service.request_task("w1", 0, box.append)
    assert box == []
    finish(service, assignment)
    assert box == [protocol.REASON_IDLE]  # all submitted work done
    # And a fresh pull gets the same immediate answer.
    assert pull(service, worker="w2") == protocol.REASON_IDLE


def test_disconnect_of_clean_worker_changes_nothing():
    service = make_service()
    submit(service, [([1], 0.0)])
    assignment = pull(service, worker="w0")
    finish(service, assignment)
    assert service.disconnect("w0") == 0
    assert service.stats.requeues == 0


# -- leases ------------------------------------------------------------------

def test_lease_expires_requeues_and_zombie_done_is_rejected():
    clock = FakeClock()
    service = make_service(lease_ttl=10.0, clock=clock)
    submit(service, [([1], 0.0)])
    zombie = pull(service, worker="zombie")
    assert pull(service, worker="healthy") == "parked"
    # Nothing expires while the lease is fresh.
    clock.advance(5.0)
    assert service.expire_leases() == 0
    # Past the TTL the sweeper requeues to the parked worker.
    clock.advance(6.0)
    assert service.expire_leases() == 1
    assert service.stats.lease_expiries == 1
    assert service.stats.requeues == 1
    assert service.outstanding == 1  # healthy holds a fresh lease
    # The zombie's late completion is rejected, stats untouched.
    late = finish(service, zombie, worker="zombie")
    assert not late.accepted and late.reason == "stale-lease"
    assert service.stats.completions == 0
    assert service.stats.stale_completions == 1
    # The healthy worker's completion is the one that counts, and the
    # zombie's even-later retry sees already-complete.
    healthy = service._assigned[zombie.task.task_id]  # fresh lease
    result = service.task_done("healthy", zombie.task.task_id,
                               healthy.lease_id)
    assert result.accepted
    assert service.stats.completions == 1
    assert not finish(service, zombie, worker="zombie").accepted
    assert service.stats.completions == 1


def test_heartbeat_renews_lease_past_original_expiry():
    clock = FakeClock()
    service = make_service(lease_ttl=10.0, clock=clock)
    submit(service, [([1], 0.0)])
    assignment = pull(service, worker="w0")
    clock.advance(8.0)
    renewed, gone = service.heartbeat("w0", [assignment.lease_id])
    assert renewed == [assignment.lease_id] and gone == []
    # Original expiry (t=10) passes without incident...
    clock.advance(8.0)  # t=16, renewed lease expires at 18
    assert service.expire_leases() == 0
    assert finish(service, assignment).accepted
    assert service.stats.lease_renewals == 1


def test_heartbeat_without_ids_renews_all_and_reports_gone():
    clock = FakeClock()
    service = make_service(lease_ttl=10.0, clock=clock)
    submit(service, [([1], 0.0), ([2], 0.0)])
    first = pull(service, worker="w0")
    second = pull(service, worker="w0")
    clock.advance(5.0)
    renewed, gone = service.heartbeat("w0")  # all held leases
    assert sorted(renewed) == sorted([first.lease_id, second.lease_id])
    clock.advance(20.0)
    assert service.expire_leases() == 2
    renewed, gone = service.heartbeat("w0", [first.lease_id])
    assert renewed == [] and gone == [first.lease_id]


def test_expired_then_recompleted_task_counts_once():
    clock = FakeClock()
    service = make_service(lease_ttl=5.0, clock=clock)
    submit(service, [([1], 0.0)])
    old = pull(service, worker="w0")
    clock.advance(6.0)
    service.expire_leases()
    fresh = pull(service, worker="w1")
    assert fresh.task.task_id == old.task.task_id
    assert fresh.lease_id != old.lease_id
    assert finish(service, fresh, worker="w1").accepted
    assert not finish(service, old, worker="w0").accepted
    assert service.stats.completions == 1
    assert service.job_status(0)["done"]


# -- multi-job tenancy -------------------------------------------------------

def test_scoped_pull_draws_only_from_its_job():
    service = make_service(metric="rest")
    submit(service, [([1], 0.0)])                 # job 0: one-file task
    submit(service, [([2, 3], 0.0), ([4, 5, 6], 0.0)])  # job 1
    # Unscoped rest would pick job 0's one-file task; scoping to job 1
    # must not.
    assignment = pull(service, job_id=1)
    assert assignment.job_id == 1
    assert assignment.task.task_id == 1  # fewest files within job 1
    with pytest.raises(ServiceError):
        pull(service, job_id=7)


def test_no_task_reason_distinguishes_job_done_from_idle():
    service = make_service()
    submit(service, [([1], 0.0)])   # job 0
    submit(service, [([2], 0.0)])   # job 1
    a0 = pull(service, worker="w0", job_id=0)
    finish(service, a0)
    # Job 0 is done: its scoped pull says so even though job 1 is live.
    assert pull(service, worker="w0", job_id=0) \
        == protocol.REASON_JOB_DONE
    assert not service.is_idle
    # Unscoped pull still gets job 1's task; after it completes the
    # server is idle.
    a1 = pull(service, worker="w1")
    finish(service, a1, worker="w1")
    assert pull(service, worker="w1") == protocol.REASON_IDLE


def test_scoped_park_wakes_on_job_completion():
    service = make_service()
    submit(service, [([1], 0.0)])   # job 0
    submit(service, [([2], 0.0)])   # job 1 keeps the server non-idle
    a0 = pull(service, worker="w0", job_id=0)
    box = []
    service.request_task("w1", 0, box.append, job_id=0)
    assert box == []  # job 0 fully outstanding: parked
    finish(service, a0)
    assert box == [protocol.REASON_JOB_DONE]


def test_scoped_park_wakes_on_lease_expiry_requeue():
    clock = FakeClock()
    service = make_service(lease_ttl=5.0, clock=clock)
    submit(service, [([1], 0.0)])
    pull(service, worker="dead", job_id=0)
    box = []
    service.request_task("w1", 0, box.append, job_id=0)
    assert box == []
    clock.advance(6.0)
    service.expire_leases()
    assert len(box) == 1 and isinstance(box[0], Assignment)
    assert box[0].job_id == 0


def test_job_status_tracks_progress():
    service = make_service()
    submit(service, [([1], 0.0), ([2], 0.0)])
    assert service.job_status(0) == {
        "job_id": 0, "tasks": 2, "completed": 0, "pending": 2,
        "outstanding": 0, "done": False}
    assignment = pull(service)
    status = service.job_status(0)
    assert status["pending"] == 1 and status["outstanding"] == 1
    finish(service, assignment)
    status = service.job_status(0)
    assert status["completed"] == 1 and not status["done"]


# -- file deltas -------------------------------------------------------------

def test_file_delta_steers_assignment():
    service = make_service(metric="overlap")
    submit(service, [([1, 2], 0.0), ([8, 9], 0.0)])
    service.file_delta(3, added=[8, 9], removed=[], referenced=[8])
    assignment = pull(service, site=3)
    assert assignment.task.task_id == 1  # overlap follows residency
    snap = service.stats_snapshot()
    assert snap["sites"]["3"]["overlap_hits"] == 1
    assert snap["file_deltas"]["referenced"] == 1


# -- drain -------------------------------------------------------------------

def test_drain_releases_parked_and_rejects_new_jobs():
    service = make_service()
    drained = []
    service.on_drained = lambda: drained.append(True)
    submit(service, [([1], 0.0), ([2], 0.0)])
    assignment = pull(service, worker="w0")
    box = []
    service.drain()
    service.request_task("w1", 0, box.append)
    assert box == [protocol.REASON_DRAINING]  # no new assignments
    assert drained == []                      # one task outstanding
    with pytest.raises(ServiceError):
        submit(service, [([5], 0.0)])
    finish(service, assignment)
    assert drained == [True]       # last completion finishes the drain


def test_drain_when_idle_completes_immediately():
    service = make_service()
    drained = []
    service.on_drained = lambda: drained.append(True)
    service.drain()
    assert drained == [True]


def test_drained_worker_disconnect_completes_drain():
    service = make_service()
    drained = []
    service.on_drained = lambda: drained.append(True)
    submit(service, [([1], 0.0)])
    pull(service, worker="w0")
    service.drain()
    assert drained == []
    # The worker dies instead of completing: drain still finishes
    # (its task requeues but is never handed out).
    service.disconnect("w0")
    assert drained == [True]
    assert service.queue_depth == 1


def test_lease_expiry_during_drain_completes_drain():
    clock = FakeClock()
    service = make_service(lease_ttl=5.0, clock=clock)
    drained = []
    service.on_drained = lambda: drained.append(True)
    submit(service, [([1], 0.0)])
    pull(service, worker="w0")
    service.drain()
    assert drained == []
    clock.advance(6.0)
    service.expire_leases()
    assert drained == [True]


# -- observability -----------------------------------------------------------

def test_snapshot_exposes_lease_and_job_counters():
    clock = FakeClock()
    service = make_service(lease_ttl=5.0, clock=clock)
    submit(service, [([1], 0.0), ([2], 0.0)])
    assignment = pull(service)
    snap = service.stats_snapshot()
    assert snap["leases"] == {"active": 1, "granted": 1,
                              "renewals": 0, "expiries": 0}
    assert snap["jobs_active"] == 1
    finish(service, assignment)
    second = pull(service)
    finish(service, second)
    snap = service.stats_snapshot()
    assert snap["jobs_completed"] == 1
    assert snap["jobs_active"] == 0
