"""Scheduling semantics of the transport-agnostic SchedulerService."""

import pytest

from repro.core.policy_engine import PolicyEngine, SiteFileState
from repro.grid.job import Task
from repro.serve.service import SchedulerService, ServiceError


def submit(service, specs):
    return service.submit_job([{"files": files, "flops": flops}
                               for files, flops in specs])


def pull(service, worker="w0", site=0):
    """Synchronous request_task; returns the delivered task (or None)
    immediately, or the string "parked" when the request parked."""
    box = []
    service.request_task(worker, site, box.append)
    return box[0] if box else "parked"


# -- engine deltas (sim-free path) -------------------------------------------

def test_site_file_state_mirrors_storage_semantics():
    state = SiteFileState()
    seen = []
    state.on_insert(lambda fid: seen.append(("+", fid)))
    state.on_evict(lambda fid: seen.append(("-", fid)))
    state.on_touch(lambda fid: seen.append(("t", fid)))
    assert state.add(5) and not state.add(5)       # idempotent
    assert 5 in state and len(state) == 1
    assert state.reference(5) == 1
    assert state.reference(7) == 1                 # refs without residency
    assert state.remove(5) and not state.remove(5)
    assert state.reference_count(5) == 1           # refs survive removal
    assert state.overlap([5, 7]) == 0
    assert seen == [("+", 5), ("t", 5), ("t", 7), ("-", 5)]


def test_engine_deltas_steer_decisions():
    tasks = {0: Task(0, frozenset({1, 2, 3})),
             1: Task(1, frozenset({8, 9}))}
    engine = PolicyEngine(tasks, metric="rest", n=1)
    engine.attach_site(0)
    for task in tasks.values():
        engine.add_task(task)
    # Zero overlap everywhere: rest prefers the fewest-files task.
    assert engine.choose(0).task_id == 1
    # Make task 0 almost fully resident at site 0: it must win now.
    engine.file_added(0, 1)
    engine.file_added(0, 2)
    assert engine.choose(0).task_id == 0
    assert engine.overlap(0, 0) == 2
    # Removing the files flips the decision back.
    engine.file_removed(0, 1)
    engine.file_removed(0, 2)
    assert engine.choose(0).task_id == 1


# -- job intake --------------------------------------------------------------

def test_submit_assigns_global_ids_across_jobs():
    service = SchedulerService()
    first = submit(service, [([1, 2], 0.0), ([3], 1.0)])
    second = submit(service, [([4], 0.0)])
    assert first == {"job_id": 0, "task_ids": [0, 1]}
    assert second == {"job_id": 1, "task_ids": [2]}
    assert service.queue_depth == 3


@pytest.mark.parametrize("payload", [
    None, [], [7], [{"files": []}], [{"files": [1, "x"]}],
    [{"files": [1], "flops": -2}],
])
def test_submit_rejects_bad_payloads(payload):
    with pytest.raises(ServiceError):
        SchedulerService().submit_job(payload)


# -- pull / park / wake ------------------------------------------------------

def test_pull_assigns_then_reports_done():
    service = SchedulerService(metric="rest")
    submit(service, [([1], 0.0), ([2, 3], 0.0)])
    task = pull(service)
    assert task.task_id == 0  # rest: fewest files first
    assert service.outstanding == 1
    assert service.task_done("w0", 0) is False
    assert service.stats.completions == 1


def test_duplicate_completion_is_tolerated_and_counted():
    service = SchedulerService()
    submit(service, [([1], 0.0)])
    task = pull(service)
    assert service.task_done("w0", task.task_id) is False
    assert service.task_done("w0", task.task_id) is True
    assert service.stats.duplicate_completions == 1
    with pytest.raises(ServiceError):
        service.task_done("w0", 999)


def test_worker_parks_before_any_job_and_wakes_on_submit():
    service = SchedulerService()
    box = []
    service.request_task("w0", 0, box.append)
    assert box == []  # parked: no job yet
    submit(service, [([4], 0.0)])
    assert len(box) == 1 and box[0].task_id == 0


def test_parked_workers_wake_fifo_on_requeue():
    service = SchedulerService()
    submit(service, [([1], 0.0)])
    task = pull(service, worker="lost")
    # Everything assigned: further pulls park (task may yet requeue).
    assert pull(service, worker="w1", site=0) == "parked"
    assert pull(service, worker="w2", site=0) == "parked"
    # The assignee dies; its task requeues to the first parked worker.
    assert service.disconnect("lost") == 1
    assert service.stats.requeues == 1
    assert service.outstanding == 1  # w1 holds it now
    assert service.task_done("w1", task.task_id) is False


def test_completion_releases_parked_workers_with_no_task():
    service = SchedulerService()
    submit(service, [([1], 0.0)])
    task = pull(service, worker="w0")
    box = []
    service.request_task("w1", 0, box.append)
    assert box == []
    service.task_done("w0", task.task_id)
    assert box == [None]  # job complete: parked worker told to leave
    # And a fresh pull gets the same immediate answer.
    assert pull(service, worker="w2") is None


def test_disconnect_of_clean_worker_changes_nothing():
    service = SchedulerService()
    submit(service, [([1], 0.0)])
    task = pull(service, worker="w0")
    service.task_done("w0", task.task_id)
    assert service.disconnect("w0") == 0
    assert service.stats.requeues == 0


# -- file deltas -------------------------------------------------------------

def test_file_delta_steers_assignment():
    service = SchedulerService(metric="overlap")
    submit(service, [([1, 2], 0.0), ([8, 9], 0.0)])
    service.file_delta(3, added=[8, 9], removed=[], referenced=[8])
    task = pull(service, site=3)
    assert task.task_id == 1  # overlap metric follows the resident files
    snap = service.stats_snapshot()
    assert snap["sites"]["3"]["overlap_hits"] == 1
    assert snap["file_deltas"]["referenced"] == 1


# -- drain -------------------------------------------------------------------

def test_drain_releases_parked_and_rejects_new_jobs():
    service = SchedulerService()
    drained = []
    service.on_drained = lambda: drained.append(True)
    submit(service, [([1], 0.0), ([2], 0.0)])
    task = pull(service, worker="w0")
    box = []
    # All pending handed out? No — one task left; park a second worker
    # by draining first so pending is never dispatched.
    service.drain()
    service.request_task("w1", 0, box.append)
    assert box == [None]           # draining: no new assignments
    assert drained == []           # one task still outstanding
    with pytest.raises(ServiceError):
        submit(service, [([5], 0.0)])
    service.task_done("w0", task.task_id)
    assert drained == [True]       # last completion finishes the drain


def test_drain_when_idle_completes_immediately():
    service = SchedulerService()
    drained = []
    service.on_drained = lambda: drained.append(True)
    service.drain()
    assert drained == [True]


def test_drained_worker_disconnect_completes_drain():
    service = SchedulerService()
    drained = []
    service.on_drained = lambda: drained.append(True)
    submit(service, [([1], 0.0)])
    pull(service, worker="w0")
    service.drain()
    assert drained == []
    # The worker dies instead of completing: drain still finishes
    # (its task requeues but is never handed out).
    service.disconnect("w0")
    assert drained == [True]
    assert service.queue_depth == 1
