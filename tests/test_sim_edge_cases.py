"""Kernel edge cases: nested conditions, event bridging, store churn."""


from repro.sim import (AllOf, AnyOf, Environment, Event, Interrupt,
                       PriorityStore, Resource, Store)


def test_nested_conditions(env):
    a = env.timeout(1.0, value="a")
    b = env.timeout(2.0, value="b")
    c = env.timeout(3.0, value="c")
    nested = AllOf(env, [AnyOf(env, [a, b]), c])
    env.run()
    assert nested.processed and nested.ok
    assert env.now == 3.0


def test_allof_with_already_processed_children(env):
    done = env.timeout(1.0)
    env.run()
    assert done.processed
    gathered = AllOf(env, [done, env.timeout(2.0)])
    env.run()
    assert gathered.processed and gathered.ok


def test_anyof_with_already_processed_child(env):
    done = env.timeout(1.0)
    env.run()
    first = AnyOf(env, [done, env.timeout(50.0)])
    env.run(until=2.0)
    assert first.processed


def test_process_yield_on_processed_event(env):
    early = env.timeout(1.0, value="early")

    def late_waiter(env):
        yield env.timeout(5.0)
        value = yield early  # already processed: resume immediately
        return (env.now, value)

    process = env.process(late_waiter(env))
    assert env.run_until_event(process) == (5.0, "early")


def test_interrupt_while_waiting_on_store(env):
    store = Store(env)
    outcome = []

    def consumer(env):
        try:
            yield store.get()
        except Interrupt:
            outcome.append("interrupted")

    process = env.process(consumer(env))

    def attacker(env):
        yield env.timeout(1.0)
        process.interrupt()

    env.process(attacker(env))
    env.run()
    assert outcome == ["interrupted"]
    # the dangling getter remains queued; a later put satisfies it
    store.put("x")
    assert store.items == () or store.items == ("x",)


def test_resource_released_in_finally_under_interrupt(env):
    resource = Resource(env, capacity=1)
    order = []

    def holder(env):
        request = resource.request()
        yield request
        try:
            yield env.timeout(100.0)
        except Interrupt:
            order.append("interrupted")
        finally:
            resource.release()

    def next_user(env):
        request = resource.request()
        yield request
        order.append(("acquired", env.now))
        resource.release()

    victim = env.process(holder(env))
    env.process(next_user(env))

    def attacker(env):
        yield env.timeout(5.0)
        victim.interrupt()

    env.process(attacker(env))
    env.run()
    assert order == ["interrupted", ("acquired", 5.0)]


def test_priority_store_len_tracks_heap(env):
    store = PriorityStore(env)
    store.put(3)
    store.put(1)
    assert len(store) == 2
    store.get()
    assert len(store) == 1
    assert store.items == (3,)


def test_event_value_before_trigger_is_none(env):
    event = Event(env)
    assert event.value is None
    assert event.ok  # default until told otherwise


def test_environment_initial_time_affects_timeouts():
    env = Environment(initial_time=100.0)
    fired = []
    env.timeout(5.0).add_callback(lambda e: fired.append(env.now))
    env.run()
    assert fired == [105.0]


def test_deep_process_chain(env):
    def leaf(env):
        yield env.timeout(1.0)
        return 1

    def node(env, depth):
        if depth == 0:
            value = yield env.process(leaf(env))
        else:
            value = yield env.process(node(env, depth - 1))
        return value + 1

    process = env.process(node(env, 20))
    assert env.run_until_event(process) == 22
