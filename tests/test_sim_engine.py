"""Environment: clock, scheduling order, run semantics."""

import pytest

from repro.sim import (EmptyScheduleError, Environment,
                       SchedulingInPastError)
from repro.sim.events import Event, URGENT


def test_initial_time_defaults_to_zero():
    assert Environment().now == 0.0


def test_initial_time_can_be_set():
    assert Environment(initial_time=42.5).now == 42.5


def test_timeout_advances_clock(env):
    env.timeout(10.0)
    env.run()
    assert env.now == 10.0


def test_events_fire_in_time_order(env):
    fired = []
    for delay in (5.0, 1.0, 3.0):
        env.timeout(delay).add_callback(
            lambda e, d=delay: fired.append(d))
    env.run()
    assert fired == [1.0, 3.0, 5.0]


def test_same_time_events_fire_in_insertion_order(env):
    fired = []
    for tag in ("first", "second", "third"):
        env.timeout(1.0).add_callback(lambda e, t=tag: fired.append(t))
    env.run()
    assert fired == ["first", "second", "third"]


def test_urgent_priority_precedes_normal_at_same_time(env):
    fired = []
    normal = Event(env)
    normal.callbacks.append(lambda e: fired.append("normal"))
    normal.succeed()
    urgent = Event(env)
    urgent.callbacks.append(lambda e: fired.append("urgent"))
    urgent._ok = True
    urgent._state = 1
    env.schedule(urgent, priority=URGENT)
    env.run()
    assert fired == ["urgent", "normal"]


def test_step_raises_on_empty_queue(env):
    with pytest.raises(EmptyScheduleError):
        env.step()


def test_run_returns_on_empty_queue(env):
    env.run()  # must not raise
    assert env.now == 0.0


def test_run_until_stops_clock_exactly_at_limit(env):
    env.timeout(100.0)
    env.run(until=30.0)
    assert env.now == 30.0
    assert len(env) == 1  # the far event is still queued


def test_run_until_processes_events_at_limit(env):
    fired = []
    env.timeout(30.0).add_callback(lambda e: fired.append(env.now))
    env.run(until=30.0)
    assert fired == [30.0]


def test_run_until_in_past_raises(env):
    env.timeout(5.0)
    env.run()
    with pytest.raises(SchedulingInPastError):
        env.run(until=1.0)


def test_negative_delay_raises(env):
    with pytest.raises(SchedulingInPastError):
        env.schedule(Event(env), delay=-1.0)


def test_peek_reports_next_event_time(env):
    assert env.peek == float("inf")
    env.timeout(7.0)
    env.timeout(3.0)
    assert env.peek == 3.0


def test_run_until_event_returns_value(env):
    def proc(env):
        yield env.timeout(4.0)
        return "result"

    process = env.process(proc(env))
    assert env.run_until_event(process) == "result"
    assert env.now == 4.0


def test_run_until_event_raises_event_failure(env):
    def proc(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    process = env.process(proc(env))
    with pytest.raises(ValueError, match="boom"):
        env.run_until_event(process)


def test_run_until_event_raises_when_drained(env):
    never = Event(env)
    env.timeout(1.0)
    with pytest.raises(EmptyScheduleError):
        env.run_until_event(never)


def test_failed_event_with_no_waiters_crashes_run(env):
    Event(env).fail(RuntimeError("unobserved"))
    with pytest.raises(RuntimeError, match="unobserved"):
        env.run()


def test_failed_event_with_waiter_does_not_crash(env):
    failing = Event(env)
    caught = []

    def proc(env):
        try:
            yield failing
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(proc(env))
    failing.fail(RuntimeError("handled"))
    env.run()
    assert caught == ["handled"]


def test_len_counts_scheduled_events(env):
    env.timeout(1.0)
    env.timeout(2.0)
    assert len(env) >= 2


def test_clock_is_monotonic_across_many_events(env):
    seen = []
    for delay in (9, 2, 7, 2, 5, 0, 1):
        env.timeout(float(delay)).add_callback(
            lambda e: seen.append(env.now))
    env.run()
    assert seen == sorted(seen)
