"""Event, Timeout, AllOf, AnyOf semantics."""

import pytest

from repro.sim import (AllOf, AnyOf, Environment, Event,
                       EventAlreadyTriggeredError, Timeout)


def test_event_starts_pending(env):
    event = Event(env)
    assert not event.triggered
    assert not event.processed


def test_succeed_carries_value(env):
    event = Event(env)
    event.succeed("payload")
    env.run()
    assert event.processed
    assert event.ok
    assert event.value == "payload"


def test_fail_carries_exception(env):
    event = Event(env)
    error = ValueError("x")
    event.fail(error)
    seen = []
    # attach a waiter so the failure counts as observed
    event.add_callback(lambda e: seen.append(e.value))
    env.run()
    assert not event.ok
    assert seen == [error]


def test_double_succeed_raises(env):
    event = Event(env)
    event.succeed()
    with pytest.raises(EventAlreadyTriggeredError):
        event.succeed()


def test_fail_after_succeed_raises(env):
    event = Event(env)
    event.succeed()
    with pytest.raises(EventAlreadyTriggeredError):
        event.fail(RuntimeError())


def test_fail_requires_exception(env):
    with pytest.raises(TypeError):
        Event(env).fail("not an exception")


def test_succeed_with_delay(env):
    event = Event(env)
    fired_at = []
    event.add_callback(lambda e: fired_at.append(env.now))
    event.succeed(delay=6.5)
    env.run()
    assert fired_at == [6.5]


def test_callback_on_already_processed_event_fires(env):
    event = Event(env)
    event.succeed("v")
    env.run()
    late = []
    event.add_callback(lambda e: late.append(e.value))
    env.run()
    assert late == ["v"]


def test_timeout_negative_delay_raises(env):
    with pytest.raises(ValueError):
        Timeout(env, -0.1)


def test_timeout_value_passes_through(env):
    def proc(env):
        got = yield env.timeout(1.0, value="tick")
        return got

    process = env.process(proc(env))
    assert env.run_until_event(process) == "tick"


def test_allof_waits_for_all(env):
    t1 = env.timeout(1.0, value="a")
    t2 = env.timeout(5.0, value="b")
    gathered = AllOf(env, [t1, t2])
    env.run()
    assert gathered.processed
    assert env.now == 5.0
    assert gathered.value == {t1: "a", t2: "b"}


def test_allof_empty_succeeds_immediately(env):
    gathered = AllOf(env, [])
    env.run()
    assert gathered.processed and gathered.ok


def test_allof_fails_on_first_child_failure(env):
    good = env.timeout(10.0)
    bad = Event(env)
    gathered = AllOf(env, [good, bad])
    caught = []

    def proc(env):
        try:
            yield gathered
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(proc(env))
    bad.fail(RuntimeError("child"))
    env.run()
    assert caught == ["child"]


def test_anyof_fires_on_first_success(env):
    slow = env.timeout(10.0, value="slow")
    fast = env.timeout(2.0, value="fast")
    first = AnyOf(env, [slow, fast])
    env.run()
    assert first.processed
    # AnyOf triggered at t=2 with only `fast` in its collected dict.
    assert fast in first.value
    assert first.value[fast] == "fast"


def test_anyof_mixed_environments_rejected():
    env_a, env_b = Environment(), Environment()
    with pytest.raises(ValueError):
        AnyOf(env_a, [Event(env_a), Event(env_b)])


def test_condition_ignores_children_after_trigger(env):
    fast = env.timeout(1.0)
    slow = env.timeout(2.0)
    first = AnyOf(env, [fast, slow])
    env.run()
    # slow completing later must not double-trigger the AnyOf.
    assert first.processed and first.ok


def test_env_factories(env):
    assert isinstance(env.event(), Event)
    assert isinstance(env.timeout(1.0), Timeout)
    assert isinstance(env.all_of([]), AllOf)
    assert isinstance(env.any_of([env.timeout(0)]), AnyOf)
