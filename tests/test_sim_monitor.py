"""Periodic state sampling."""

import pytest

from repro.sim.monitor import StateMonitor, grid_probes


def test_interval_validation(env):
    with pytest.raises(ValueError):
        StateMonitor(env, interval=0.0)


def test_samples_on_cadence(env):
    clock = {"ticks": 0}

    def advance(env):
        for _ in range(10):
            yield env.timeout(10.0)
            clock["ticks"] += 1

    monitor = StateMonitor(env, interval=25.0,
                           stop_when=lambda: env.now >= 100.0)
    monitor.add_probe("ticks", lambda: clock["ticks"])
    env.process(advance(env))
    env.run()
    times = [t for t, _v in monitor.series["ticks"]]
    # sampling stops at the first check after stop_when turns true,
    # so t=100 itself is not sampled
    assert times == [0.0, 25.0, 50.0, 75.0]


def test_duplicate_probe_rejected(env):
    monitor = StateMonitor(env, interval=1.0, stop_when=lambda: True)
    monitor.add_probe("x", lambda: 0)
    with pytest.raises(ValueError):
        monitor.add_probe("x", lambda: 1)


def test_peak_and_mean(env):
    values = iter([1.0, 5.0, 3.0])
    monitor = StateMonitor(env, interval=10.0,
                           stop_when=lambda: env.now >= 20.0)
    monitor.add_probe("v", lambda: next(values))
    env.timeout(30.0)  # keep the clock moving
    env.run()
    assert monitor.peak("v") == (10.0, 5.0)
    assert monitor.mean("v") == pytest.approx(3.0)


def test_stats_require_samples(env):
    monitor = StateMonitor(env, interval=1.0, stop_when=lambda: True)
    monitor.add_probe("empty", lambda: 0)
    env.run()
    with pytest.raises(ValueError):
        monitor.peak("empty")
    with pytest.raises(ValueError):
        monitor.mean("empty")


def test_grid_probes_on_real_run():
    from repro.exp import ExperimentConfig
    from repro.exp.runner import build_grid, build_job
    from repro.core.registry import create_scheduler
    import random

    config = ExperimentConfig(scheduler="rest", num_tasks=30,
                              num_sites=2, capacity_files=400)
    job = build_job(config)
    grid = build_grid(config, job)
    scheduler = create_scheduler("rest", job, random.Random(0))
    grid.attach_scheduler(scheduler)
    monitor = StateMonitor(grid.env, interval=60.0,
                           stop_when=lambda: scheduler.tasks_remaining
                           == 0)
    grid_probes(monitor, grid)
    grid.run()
    assert monitor.series["pending_tasks"][0][1] == 30
    assert monitor.series["pending_tasks"][-1][1] <= 1
    assert 0.0 <= monitor.mean("storage_fill") <= 1.0
    assert monitor.peak("busy_workers")[1] >= 1
