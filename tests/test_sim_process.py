"""Process semantics: stepping, fork/join, interrupts, error paths."""

import pytest

from repro.sim import Interrupt


def test_process_runs_to_completion(env):
    steps = []

    def proc(env):
        steps.append(env.now)
        yield env.timeout(2.0)
        steps.append(env.now)

    env.process(proc(env))
    env.run()
    assert steps == [0.0, 2.0]


def test_process_return_value_becomes_event_value(env):
    def proc(env):
        yield env.timeout(1.0)
        return 99

    process = env.process(proc(env))
    env.run()
    assert process.value == 99


def test_process_is_alive_lifecycle(env):
    def proc(env):
        yield env.timeout(5.0)

    process = env.process(proc(env))
    assert process.is_alive
    env.run(until=1.0)
    assert process.is_alive
    env.run()
    assert not process.is_alive


def test_yield_process_joins_child(env):
    def child(env):
        yield env.timeout(3.0)
        return "done"

    def parent(env):
        result = yield env.process(child(env))
        return (env.now, result)

    parent_proc = env.process(parent(env))
    assert env.run_until_event(parent_proc) == (3.0, "done")


def test_non_generator_rejected(env):
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_yielding_non_event_is_an_error(env):
    def proc(env):
        yield 42

    process = env.process(proc(env))
    with pytest.raises(TypeError):
        env.run_until_event(process)


def test_process_failure_propagates_to_waiter(env):
    def child(env):
        yield env.timeout(1.0)
        raise KeyError("inner")

    def parent(env):
        try:
            yield env.process(child(env))
        except KeyError:
            return "caught"

    parent_proc = env.process(parent(env))
    assert env.run_until_event(parent_proc) == "caught"


def test_unhandled_process_failure_crashes_run(env):
    def proc(env):
        yield env.timeout(1.0)
        raise RuntimeError("unhandled")

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_interrupt_is_catchable(env):
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    victim_proc = env.process(victim(env))

    def attacker(env):
        yield env.timeout(5.0)
        victim_proc.interrupt("reason")

    env.process(attacker(env))
    env.run()
    assert log == [(5.0, "reason")]


def test_interrupt_cause_defaults_to_none(env):
    causes = []

    def victim(env):
        try:
            yield env.timeout(10.0)
        except Interrupt as interrupt:
            causes.append(interrupt.cause)

    victim_proc = env.process(victim(env))

    def attacker(env):
        yield env.timeout(1.0)
        victim_proc.interrupt()

    env.process(attacker(env))
    env.run()
    assert causes == [None]


def test_interrupted_process_can_continue(env):
    trail = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            trail.append("interrupted")
        yield env.timeout(2.0)
        trail.append(env.now)

    victim_proc = env.process(victim(env))

    def attacker(env):
        yield env.timeout(3.0)
        victim_proc.interrupt()

    env.process(attacker(env))
    env.run()
    assert trail == ["interrupted", 5.0]


def test_interrupt_dead_process_raises(env):
    def proc(env):
        yield env.timeout(1.0)

    process = env.process(proc(env))
    env.run()
    with pytest.raises(RuntimeError):
        process.interrupt()


def test_interrupt_does_not_fire_stale_target(env):
    """After an interrupt, the original waited-on event completing must
    not resume the process a second time."""
    resumed = []

    def victim(env):
        timer = env.timeout(10.0)
        try:
            yield timer
            resumed.append("timer")
        except Interrupt:
            resumed.append("interrupt")
        yield env.timeout(20.0)
        resumed.append("after")

    victim_proc = env.process(victim(env))

    def attacker(env):
        yield env.timeout(5.0)
        victim_proc.interrupt()

    env.process(attacker(env))
    env.run()
    assert resumed == ["interrupt", "after"]


def test_process_name_from_generator(env):
    def my_worker(env):
        yield env.timeout(1.0)

    process = env.process(my_worker(env))
    assert "my_worker" in process.name or process.name == "process"
    named = env.process(my_worker(env), name="custom")
    assert named.name == "custom"
    env.run()


def test_two_processes_interleave(env):
    order = []

    def proc(env, tag, delay):
        for _ in range(3):
            yield env.timeout(delay)
            order.append((env.now, tag))

    env.process(proc(env, "a", 2.0))
    env.process(proc(env, "b", 3.0))
    env.run()
    # At t=6 both are due; b's timeout was inserted earlier (at t=3,
    # before a's at t=4), so insertion order puts b first.
    assert order == [(2.0, "a"), (3.0, "b"), (4.0, "a"), (6.0, "b"),
                     (6.0, "a"), (9.0, "b")]


def test_active_process_visible_during_step(env):
    observed = []

    def proc(env):
        observed.append(env.active_process)
        yield env.timeout(1.0)

    process = env.process(proc(env))
    env.run()
    assert observed == [process]
    assert env.active_process is None
