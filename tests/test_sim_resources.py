"""Resource / Store / PriorityStore contention semantics."""

import pytest

from repro.sim import PriorityStore, Resource, Store


def test_resource_grants_up_to_capacity(env):
    resource = Resource(env, capacity=2)
    first, second, third = (resource.request() for _ in range(3))
    assert first.triggered and second.triggered
    assert not third.triggered
    assert resource.count == 2
    assert resource.queue_length == 1


def test_resource_release_wakes_fifo(env):
    resource = Resource(env, capacity=1)
    resource.request()
    waiting_a = resource.request()
    waiting_b = resource.request()
    resource.release()
    assert waiting_a.triggered
    assert not waiting_b.triggered


def test_resource_release_without_request_raises(env):
    with pytest.raises(RuntimeError):
        Resource(env).release()


def test_resource_capacity_validation(env):
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_cancel_queued_request(env):
    resource = Resource(env, capacity=1)
    resource.request()
    queued = resource.request()
    assert resource.cancel(queued)
    assert not resource.cancel(queued)  # already removed
    resource.release()
    assert not queued.triggered
    assert resource.count == 0


def test_resource_serializes_processes(env):
    resource = Resource(env, capacity=1)
    spans = []

    def user(env, tag, hold):
        request = resource.request()
        yield request
        start = env.now
        yield env.timeout(hold)
        resource.release()
        spans.append((tag, start, env.now))

    env.process(user(env, "a", 4.0))
    env.process(user(env, "b", 2.0))
    env.run()
    assert spans == [("a", 0.0, 4.0), ("b", 4.0, 6.0)]


def test_store_put_then_get(env):
    store = Store(env)
    store.put("item")
    got = store.get()
    assert got.triggered and got.value == "item"


def test_store_get_blocks_until_put(env):
    store = Store(env)
    results = []

    def consumer(env):
        item = yield store.get()
        results.append((env.now, item))

    def producer(env):
        yield env.timeout(5.0)
        store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert results == [(5.0, "late")]


def test_store_fifo_order(env):
    store = Store(env)
    for i in range(3):
        store.put(i)
    assert [store.get().value for _ in range(3)] == [0, 1, 2]


def test_store_getters_served_in_order(env):
    store = Store(env)
    order = []

    def consumer(env, tag):
        item = yield store.get()
        order.append((tag, item))

    env.process(consumer(env, "first"))
    env.process(consumer(env, "second"))

    def producer(env):
        yield env.timeout(1.0)
        store.put("x")
        store.put("y")

    env.process(producer(env))
    env.run()
    assert order == [("first", "x"), ("second", "y")]


def test_bounded_store_blocks_put(env):
    store = Store(env, capacity=1)
    first = store.put("a")
    second = store.put("b")
    assert first.triggered
    assert not second.triggered
    got = store.get()
    assert got.value == "a"
    assert second.triggered
    assert store.items == ("b",)


def test_store_capacity_validation(env):
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_len_and_items(env):
    store = Store(env)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.items == (1, 2)


def test_priority_store_orders_items(env):
    store = PriorityStore(env)
    for value in (5, 1, 3):
        store.put(value)
    assert [store.get().value for _ in range(3)] == [1, 3, 5]


def test_priority_store_ties_fifo(env):
    store = PriorityStore(env)
    store.put((1, "first"))
    store.put((1, "second"))
    assert store.get().value == (1, "first")
    assert store.get().value == (1, "second")


def test_priority_store_blocking_get(env):
    store = PriorityStore(env)
    got = store.get()
    assert not got.triggered
    store.put(7)
    assert got.triggered and got.value == 7


def test_priority_store_bounded_put(env):
    store = PriorityStore(env, capacity=1)
    store.put(2)
    blocked = store.put(1)
    assert not blocked.triggered
    assert store.get().value == 2
    assert blocked.triggered
    assert store.get().value == 1
