"""Deterministic named RNG streams."""

from repro.sim import RngRegistry, derive_seed


def test_derive_seed_is_stable():
    assert derive_seed(42, "topology") == derive_seed(42, "topology")


def test_derive_seed_differs_by_name():
    assert derive_seed(42, "a") != derive_seed(42, "b")


def test_derive_seed_differs_by_master():
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_streams_are_reproducible():
    a = RngRegistry(7).stream("x")
    b = RngRegistry(7).stream("x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_streams_are_independent():
    registry = RngRegistry(7)
    first_alone = RngRegistry(7).stream("first").random()
    # Consuming another stream must not perturb "first".
    registry.stream("other").random()
    assert registry.stream("first").random() == first_alone


def test_stream_identity_is_cached():
    registry = RngRegistry(3)
    assert registry.stream("s") is registry.stream("s")


def test_fork_produces_distinct_namespace():
    parent = RngRegistry(9)
    child = parent.fork("run-1")
    assert child.master_seed != parent.master_seed
    assert (child.stream("x").random()
            != parent.stream("x").random())


def test_fork_is_reproducible():
    a = RngRegistry(9).fork("run-1").stream("x").random()
    b = RngRegistry(9).fork("run-1").stream("x").random()
    assert a == b
