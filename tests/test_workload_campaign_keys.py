"""generate_with_keys and the identity-key contract campaigns rely on."""

import pytest

from repro.workload.coadd import CoaddParams, generate, generate_with_keys


@pytest.fixture(scope="module")
def params():
    return CoaddParams(num_tasks=80)


def test_keys_cover_every_file(params):
    job, keys = generate_with_keys(params, seed=3)
    assert len(keys) == len(job.catalog)
    assert all(key is not None for key in keys)


def test_keys_are_unique(params):
    _job, keys = generate_with_keys(params, seed=3)
    assert len(set(keys)) == len(keys)


def test_field_keys_before_aux_keys(params):
    _job, keys = generate_with_keys(params, seed=3)
    kinds = [key[0] for key in keys]
    first_aux = kinds.index("aux")
    assert all(kind == "field" for kind in kinds[:first_aux])
    assert all(kind == "aux" for kind in kinds[first_aux:])


def test_with_keys_job_matches_generate(params):
    plain = generate(params, seed=3)
    keyed, _keys = generate_with_keys(params, seed=3)
    assert all(a.files == b.files for a, b in zip(plain, keyed))


def test_jitter_preserves_field_identity(params):
    """A field key maps to the same (run, k) cell in both rolls —
    and heavily-overlapping field sets result."""
    _job_a, keys_a = generate_with_keys(params, seed=3)
    _job_b, keys_b = generate_with_keys(params, seed=3, jitter_seed=99)
    fields_a = {key for key in keys_a if key[0] == "field"}
    fields_b = {key for key in keys_b if key[0] == "field"}
    shared = fields_a & fields_b
    assert len(shared) / len(fields_a) > 0.9


def test_jitter_changes_task_inputs(params):
    job_a, _ = generate_with_keys(params, seed=3)
    job_b, _ = generate_with_keys(params, seed=3, jitter_seed=99)
    assert any(a.files != b.files for a, b in zip(job_a, job_b))


def test_same_jitter_reproducible(params):
    a, keys_a = generate_with_keys(params, seed=3, jitter_seed=7)
    b, keys_b = generate_with_keys(params, seed=3, jitter_seed=7)
    assert keys_a == keys_b
    assert all(ta.files == tb.files for ta, tb in zip(a, b))
