"""Synthetic Coadd: calibration against Table 2 / Figure 3."""

import pytest

from repro.workload import COADD_6000, CoaddParams, characterize, generate_coadd
from repro.workload.coadd import COADD_FULL


@pytest.fixture(scope="module")
def coadd_job():
    return generate_coadd(COADD_6000, seed=0)


@pytest.fixture(scope="module")
def coadd_stats(coadd_job):
    return characterize(coadd_job)


def test_task_count(coadd_stats):
    assert coadd_stats.num_tasks == 6000


def test_total_files_matches_table2(coadd_stats):
    # Table 2: 53,390 files; calibrated within 2%.
    assert coadd_stats.total_files == pytest.approx(53390, rel=0.02)


def test_files_per_task_range_matches_table2(coadd_stats):
    # Table 2: min 36, max 101.
    assert 30 <= coadd_stats.min_files_per_task <= 45
    assert 90 <= coadd_stats.max_files_per_task <= 115


def test_avg_files_per_task_matches_table2(coadd_stats):
    # Table 2: 78.4327 average; within 3%.
    assert coadd_stats.avg_files_per_task == pytest.approx(78.43, rel=0.03)


def test_reference_cdf_matches_fig3(coadd_stats):
    # Figure 3: ~85% of files referenced by 6 or more tasks.
    fraction = coadd_stats.fraction_referenced_at_least(6)
    assert fraction == pytest.approx(0.85, abs=0.04)


def test_reference_cdf_monotone(coadd_stats):
    series = coadd_stats.reference_cdf
    fractions = [fraction for _k, fraction in series]
    assert fractions == sorted(fractions, reverse=True)
    assert series[0][1] == pytest.approx(1.0)


def test_generation_is_deterministic():
    small = CoaddParams(num_tasks=50)
    a = generate_coadd(small, seed=5)
    b = generate_coadd(small, seed=5)
    assert all(ta.files == tb.files for ta, tb in zip(a, b))


def test_different_seeds_differ():
    small = CoaddParams(num_tasks=50)
    a = generate_coadd(small, seed=1)
    b = generate_coadd(small, seed=2)
    assert any(ta.files != tb.files for ta, tb in zip(a, b))


def test_neighbours_share_most_files(coadd_job):
    """Spatial locality: consecutive stripe tasks overlap heavily."""
    tasks = coadd_job.tasks
    overlaps = []
    for left, right in zip(tasks[100:200], tasks[101:201]):
        shared = len(left.files & right.files)
        overlaps.append(shared / min(left.num_files, right.num_files))
    assert sum(overlaps) / len(overlaps) > 0.7


def test_file_size_override():
    job = generate_coadd(CoaddParams(num_tasks=20), seed=0,
                         file_size=123.0)
    assert job.catalog.default_size == 123.0


def test_flops_proportional_to_files():
    params = CoaddParams(num_tasks=20, flops_per_file=7.0)
    job = generate_coadd(params, seed=0)
    for task in job:
        assert task.flops == pytest.approx(7.0 * task.num_files)


def test_stats_stable_across_seeds():
    params = CoaddParams(num_tasks=2000)
    for seed in (1, 2):
        stats = characterize(generate_coadd(params, seed=seed))
        assert stats.avg_files_per_task == pytest.approx(78.4, rel=0.05)
        assert stats.fraction_referenced_at_least(6) == pytest.approx(
            0.85, abs=0.06)


def test_param_validation():
    with pytest.raises(ValueError):
        CoaddParams(num_tasks=0)
    with pytest.raises(ValueError):
        CoaddParams(stride=0)
    with pytest.raises(ValueError):
        CoaddParams(width_lo=0)
    with pytest.raises(ValueError):
        CoaddParams(aux_files_per_task=-1)
    with pytest.raises(ValueError):
        CoaddParams(aux_span_lo=3, aux_span_hi=2)
    with pytest.raises(ValueError):
        CoaddParams(field_lengths=(0.0,))


def test_full_preset_shape():
    assert COADD_FULL.num_tasks == 44000
    # don't generate 44k tasks in the unit suite; shape-check params only
    assert COADD_FULL.num_runs > COADD_6000.num_runs
