"""Synthetic generators, Top500 speeds, stats, ordering, traces."""

import random

import pytest

from repro.workload import (characterize, load_job, reference_cdf_series,
                            sample_speed, sample_speeds, save_job,
                            sliding_window, uniform_random, zipf_popularity)
from repro.workload import top500
from repro.workload.ordering import reorder_job
from repro.workload.traces import job_from_dict, job_to_dict

from conftest import make_job


# -- synthetic generators ------------------------------------------------

def test_uniform_random_shape():
    job = uniform_random(num_tasks=20, num_files=100, files_per_task=5,
                         seed=1)
    assert len(job) == 20
    assert all(task.num_files == 5 for task in job)
    assert len(job.catalog) == 100


def test_uniform_random_validation():
    with pytest.raises(ValueError):
        uniform_random(5, num_files=3, files_per_task=4)


def test_uniform_random_deterministic():
    a = uniform_random(10, 50, 5, seed=3)
    b = uniform_random(10, 50, 5, seed=3)
    assert all(ta.files == tb.files for ta, tb in zip(a, b))


def test_zipf_popularity_skews_references():
    job = zipf_popularity(num_tasks=60, num_files=200, files_per_task=10,
                          alpha=1.2, seed=2)
    counts = job.reference_counts()
    top = max(counts.values())
    # rank-1 files must be far more popular than the median file
    median = sorted(counts.values())[len(counts) // 2]
    assert top >= 4 * median


def test_zipf_validation():
    with pytest.raises(ValueError):
        zipf_popularity(5, 3, 4)
    with pytest.raises(ValueError):
        zipf_popularity(5, 10, 2, alpha=0.0)


def test_sliding_window_structure():
    job = sliding_window(num_tasks=5, span=4, step=2)
    assert job[0].files == frozenset({0, 1, 2, 3})
    assert job[1].files == frozenset({2, 3, 4, 5})
    assert len(job.catalog) == 4 * 2 + 4  # (5-1)*2 + 4


def test_sliding_window_validation():
    with pytest.raises(ValueError):
        sliding_window(5, span=0)


# -- top500 ----------------------------------------------------------------

def test_rmax_endpoints():
    assert top500.rmax_mflops(1) == pytest.approx(top500.RMAX_TOP_MFLOPS)
    assert top500.rmax_mflops(500) == pytest.approx(
        top500.RMAX_BOTTOM_MFLOPS, rel=0.01)


def test_rmax_monotone_decreasing():
    values = [top500.rmax_mflops(rank) for rank in (1, 10, 100, 500)]
    assert values == sorted(values, reverse=True)


def test_rmax_rank_validation():
    with pytest.raises(ValueError):
        top500.rmax_mflops(0)
    with pytest.raises(ValueError):
        top500.rmax_mflops(501)


def test_sample_speed_applies_divisor():
    rng = random.Random(0)
    speed = sample_speed(rng)
    assert top500.RMAX_BOTTOM_MFLOPS / 100 <= speed \
        <= top500.RMAX_TOP_MFLOPS / 100


def test_sample_speeds_count_and_determinism():
    a = sample_speeds(random.Random(5), 10)
    b = sample_speeds(random.Random(5), 10)
    assert len(a) == 10 and a == b
    with pytest.raises(ValueError):
        sample_speeds(random.Random(0), -1)


# -- stats ------------------------------------------------------------------

def test_characterize_tiny(tiny_job):
    stats = characterize(tiny_job)
    assert stats.num_tasks == 4
    assert stats.total_files == 6
    assert stats.min_files_per_task == 3
    assert stats.max_files_per_task == 3
    assert stats.avg_files_per_task == pytest.approx(3.0)


def test_reference_cdf_values(tiny_job):
    stats = characterize(tiny_job)
    # counts: two files x1, two x2, two x3
    assert stats.fraction_referenced_at_least(1) == pytest.approx(1.0)
    assert stats.fraction_referenced_at_least(2) == pytest.approx(4 / 6)
    assert stats.fraction_referenced_at_least(3) == pytest.approx(2 / 6)
    assert stats.fraction_referenced_at_least(4) == 0.0


def test_reference_cdf_series_format(tiny_job):
    series = reference_cdf_series(characterize(tiny_job),
                                  points=(1, 2, 3))
    assert series == [(1, pytest.approx(100.0)),
                      (2, pytest.approx(100 * 4 / 6)),
                      (3, pytest.approx(100 * 2 / 6))]


def test_as_table_contains_counts(tiny_job):
    text = characterize(tiny_job).as_table()
    assert "6" in text and "Average" in text


# -- ordering ---------------------------------------------------------------

def test_reorder_natural_is_identity(tiny_job):
    assert reorder_job(tiny_job, "natural") is tiny_job


def test_reorder_shuffled_renumbers(tiny_job):
    shuffled = reorder_job(tiny_job, "shuffled", seed=1)
    assert [t.task_id for t in shuffled] == [0, 1, 2, 3]
    original = [t.files for t in tiny_job]
    permuted = [t.files for t in shuffled]
    assert sorted(map(sorted, original)) == sorted(map(sorted, permuted))
    assert original != permuted  # seed 1 actually permutes 4 items


def test_reorder_shuffled_deterministic(tiny_job):
    a = reorder_job(tiny_job, "shuffled", seed=2)
    b = reorder_job(tiny_job, "shuffled", seed=2)
    assert [t.files for t in a] == [t.files for t in b]


def test_reorder_striped():
    job = make_job([{i} for i in range(6)])
    striped = reorder_job(job, "striped", stripes=2)
    # blocks [0,1,2] and [3,4,5] -> interleave 0,3,1,4,2,5
    assert [next(iter(t.files)) for t in striped] == [0, 3, 1, 4, 2, 5]


def test_reorder_unknown_rejected(tiny_job):
    with pytest.raises(ValueError):
        reorder_job(tiny_job, "bogus")


# -- traces (serialization) --------------------------------------------------

def test_job_roundtrip_dict(tiny_job):
    clone = job_from_dict(job_to_dict(tiny_job))
    assert len(clone) == len(tiny_job)
    assert all(a.files == b.files and a.flops == b.flops
               for a, b in zip(tiny_job, clone))
    assert clone.catalog.default_size == tiny_job.catalog.default_size


def test_job_roundtrip_file(tmp_path, tiny_job):
    path = tmp_path / "job.json"
    save_job(tiny_job, path)
    clone = load_job(path)
    assert all(a.files == b.files for a, b in zip(tiny_job, clone))


def test_job_roundtrip_preserves_size_overrides(tmp_path):
    from repro.grid.files import FileCatalog
    from repro.grid.job import Job, Task
    catalog = FileCatalog(3, default_size=10.0, sizes={1: 99.0})
    job = Job([Task(0, frozenset({0, 1, 2}))], catalog)
    clone = job_from_dict(job_to_dict(job))
    assert clone.catalog.size(1) == 99.0
    assert clone.catalog.size(0) == 10.0


def test_bad_version_rejected(tiny_job):
    data = job_to_dict(tiny_job)
    data["version"] = 999
    with pytest.raises(ValueError):
        job_from_dict(data)
